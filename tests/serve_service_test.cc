#include "serve/service.h"

#include <atomic>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/raster.h"
#include "nn/vgg.h"
#include "serve/json.h"

/// The NDJSON front-end: JSON round-trips, bounded-queue semantics, the
/// request loop end-to-end against a fitted session, and the multi-task
/// gateway (task routing, registry ops, cross-request coalescing).

namespace goggles {
namespace {

using serve::BoundedQueue;
using serve::JsonValue;

// ---- JSON -----------------------------------------------------------------

TEST(JsonTest, ParsesScalarsAndContainers) {
  auto v = JsonValue::Parse(
      R"({"a":1.5,"b":[true,null,"x"],"nested":{"k":-2e3}})");
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->Find("a")->number(), 1.5);
  const JsonValue* b = v->Find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].bool_value());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_EQ(b->items()[2].str(), "x");
  EXPECT_DOUBLE_EQ(v->Find("nested")->Find("k")->number(), -2000.0);
}

TEST(JsonTest, ParsesStringEscapes) {
  auto v = JsonValue::Parse(R"(["a\"b\\c\n\t", "\u0041\u00e9\u20ac"])");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->items()[0].str(), "a\"b\\c\n\t");
  EXPECT_EQ(v->items()[1].str(), "A\xC3\xA9\xE2\x82\xAC");  // A é €
}

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("op", JsonValue("label"));
  obj.Set("count", JsonValue(3.25));
  obj.Set("flag", JsonValue(true));
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue(1.0));
  arr.Append(JsonValue("two\nlines"));
  obj.Set("items", std::move(arr));

  auto reparsed = JsonValue::Parse(obj.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->Dump(), obj.Dump());
  EXPECT_EQ(reparsed->Find("items")->items()[1].str(), "two\nlines");
}

TEST(JsonTest, MalformedInputsAreRejectedNotCrashed) {
  const char* bad[] = {
      "",           "{",        "[1,",        "{\"a\":}",  "tru",
      "\"unterminated", "{\"a\":1}extra", "[\"\\u12\"]", "nan", "{1:2}",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonTest, DeepNestingHitsTheDepthGuard) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

// ---- BoundedQueue ---------------------------------------------------------

TEST(BoundedQueueTest, FifoAndCloseDrain) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // closed
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.Pop(), std::nullopt);  // drained
}

TEST(BoundedQueueTest, PushBlocksUntilCapacityFrees) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    queue.Push(2);  // blocks until the consumer pops
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> queue(8);
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&queue] {
      for (int i = 0; i < kPerProducer; ++i) queue.Push(i);
    });
  }
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (queue.Pop().has_value()) consumed.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), 3 * kPerProducer);
}

// ---- Service --------------------------------------------------------------

data::Image PatternImage(int variant) {
  data::Image img(3, 32, 32, 0.1f);
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 6 + variant % 5, {1.0f, 0.2f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 6, 6, 26, 26, {0.2f, 1.0f, 0.2f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 14, 3, {0.2f, 0.2f, 1.0f});
      break;
  }
  return img;
}

std::string ImageToJson(const data::Image& img) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("channels", JsonValue(img.channels));
  obj.Set("height", JsonValue(img.height));
  obj.Set("width", JsonValue(img.width));
  JsonValue pixels = JsonValue::MakeArray();
  for (float v : img.pixels) pixels.Append(JsonValue(static_cast<double>(v)));
  obj.Set("pixels", std::move(pixels));
  return obj.Dump();
}

class ServeServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    nn::VggMiniConfig config;
    config.stage_channels = {4, 8, 8, 8, 8};
    config.num_classes = 4;
    Result<nn::VggMini> model = nn::BuildVggMini(config);
    model.status().Abort("vgg");
    extractor_ = new std::shared_ptr<features::FeatureExtractor>(
        std::make_shared<features::FeatureExtractor>(std::move(*model)));
    std::vector<data::Image> pool;
    for (int i = 0; i < 12; ++i) pool.push_back(PatternImage(i));
    GogglesConfig goggles_config;
    goggles_config.top_z = 3;
    auto session = serve::Session::Fit(*extractor_, pool, {0, 1, 2, 3},
                                       {0, 1, 0, 1}, 2, goggles_config);
    session.status().Abort("Session::Fit");
    session_ = new std::shared_ptr<const serve::Session>(
        std::make_shared<const serve::Session>(std::move(*session)));
  }

  static void TearDownTestSuite() {
    delete session_;
    delete extractor_;
  }

  static std::shared_ptr<features::FeatureExtractor>* extractor_;
  static std::shared_ptr<const serve::Session>* session_;
};

std::shared_ptr<features::FeatureExtractor>* ServeServiceTest::extractor_ =
    nullptr;
std::shared_ptr<const serve::Session>* ServeServiceTest::session_ = nullptr;

TEST_F(ServeServiceTest, StatsOp) {
  serve::Service service(*session_);
  auto response = JsonValue::Parse(service.HandleLine(R"({"op":"stats"})"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->Find("ok")->bool_value());
  EXPECT_DOUBLE_EQ(response->Find("pool_size")->number(), 12.0);
  EXPECT_DOUBLE_EQ(response->Find("num_classes")->number(), 2.0);
  EXPECT_DOUBLE_EQ(response->Find("num_functions")->number(), 15.0);
}

TEST_F(ServeServiceTest, LabelOpMatchesDirectSession) {
  serve::Service service(*session_);
  const data::Image query = PatternImage(13);
  const std::string line =
      std::string(R"({"op":"label","image":)") + ImageToJson(query) + "}";
  auto response = JsonValue::Parse(service.HandleLine(line));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->Find("ok")->bool_value())
      << response->Find("error")->str();

  auto direct = (*session_)->LabelOne(query);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(static_cast<int>(response->Find("label")->number()), direct->hard);
  const JsonValue* soft = response->Find("soft");
  ASSERT_EQ(soft->items().size(), direct->soft.size());
  for (size_t k = 0; k < direct->soft.size(); ++k) {
    EXPECT_NEAR(soft->items()[k].number(), direct->soft[k], 1e-15);
  }
}

TEST_F(ServeServiceTest, MalformedRequestsReturnErrorsNotCrashes) {
  serve::Service service(*session_);
  const char* lines[] = {
      "not json at all",
      R"({"op":"unknown"})",
      R"({"no_op":true})",
      R"({"op":"label"})",
      R"({"op":"label","image":{"channels":3,"height":2,"width":2,"pixels":[1]}})",
      R"({"op":"label","image":{"channels":1e300,"height":1,"width":1,"pixels":[0]}})",
      R"({"op":"label","image":{"channels":1.5,"height":1,"width":1,"pixels":[0,0]}})",
      // Overflowing numeric literal: must be a parse error, not inf.
      R"({"op":"label","image":{"channels":1,"height":1,"width":1,"pixels":[1e999]}})",
      R"({"op":"label_batch","images":[]})",
  };
  for (const char* line : lines) {
    auto response = JsonValue::Parse(service.HandleLine(line));
    ASSERT_TRUE(response.ok()) << "response not JSON for: " << line;
    EXPECT_FALSE(response->Find("ok")->bool_value()) << "accepted: " << line;
    EXPECT_TRUE(response->Find("error")->is_string());
  }

  // Mixed image shapes within one batch must be rejected (stacking them
  // into one tensor would otherwise index out of bounds).
  const std::string mixed =
      std::string(R"({"op":"label_batch","images":[)") +
      ImageToJson(data::Image(3, 32, 32, 0.5f)) + "," +
      ImageToJson(data::Image(3, 16, 16, 0.5f)) + "]}";
  auto response = JsonValue::Parse(service.HandleLine(mixed));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->Find("ok")->bool_value())
      << "mixed-shape batch accepted";
}

TEST_F(ServeServiceTest, RunPreservesInputOrderAcrossWorkers) {
  serve::ServiceConfig config;
  config.num_workers = 3;
  config.queue_capacity = 2;  // force backpressure
  serve::Service service(*session_, config);

  std::ostringstream input;
  std::vector<data::Image> queries;
  for (int i = 0; i < 8; ++i) {
    if (i % 3 == 0) {
      input << R"({"op":"stats"})" << "\n";
    } else {
      queries.push_back(PatternImage(20 + i));
      input << R"({"op":"label","image":)" << ImageToJson(queries.back())
            << "}\n";
    }
  }
  std::istringstream in(input.str());
  std::ostringstream out;
  ASSERT_TRUE(service.Run(in, out).ok());

  std::istringstream lines(out.str());
  std::string line;
  int line_no = 0;
  size_t query_idx = 0;
  while (std::getline(lines, line)) {
    auto response = JsonValue::Parse(line);
    ASSERT_TRUE(response.ok()) << line;
    ASSERT_TRUE(response->Find("ok")->bool_value());
    if (line_no % 3 == 0) {
      EXPECT_TRUE(response->Find("pool_size") != nullptr)
          << "line " << line_no << " should be a stats response";
    } else {
      ASSERT_LT(query_idx, queries.size());
      auto direct = (*session_)->LabelOne(queries[query_idx++]);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(static_cast<int>(response->Find("label")->number()),
                direct->hard)
          << "line " << line_no << " out of order";
    }
    ++line_no;
  }
  EXPECT_EQ(line_no, 8);
  EXPECT_EQ(service.requests_served(), 8u);
}

TEST_F(ServeServiceTest, RunWithCoalescingPreservesOrderAndResults) {
  serve::ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 16;
  config.coalesce.enabled = true;
  config.coalesce.max_batch = 4;
  config.coalesce.window_micros = 20000;
  serve::Service service(*session_, config);

  std::ostringstream input;
  std::vector<data::Image> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(PatternImage(30 + i));
    input << R"({"op":"label","image":)" << ImageToJson(queries.back())
          << "}\n";
  }
  std::istringstream in(input.str());
  std::ostringstream out;
  ASSERT_TRUE(service.Run(in, out).ok());

  // Coalesced or not, every response must be bit-identical to its
  // singleton LabelOne and arrive in input order.
  std::istringstream lines(out.str());
  std::string line;
  size_t idx = 0;
  while (std::getline(lines, line)) {
    auto response = JsonValue::Parse(line);
    ASSERT_TRUE(response.ok()) << line;
    ASSERT_TRUE(response->Find("ok")->bool_value()) << line;
    ASSERT_LT(idx, queries.size());
    auto direct = (*session_)->LabelOne(queries[idx]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(static_cast<int>(response->Find("label")->number()),
              direct->hard);
    const JsonValue* soft = response->Find("soft");
    ASSERT_EQ(soft->items().size(), direct->soft.size());
    for (size_t k = 0; k < direct->soft.size(); ++k) {
      EXPECT_EQ(soft->items()[k].number(), direct->soft[k])
          << "response " << idx << " not bit-identical at class " << k;
    }
    ++idx;
  }
  EXPECT_EQ(idx, queries.size());
}

TEST_F(ServeServiceTest, TaskRoutingIsRejectedWithoutARegistry) {
  serve::Service service(*session_);
  auto response = JsonValue::Parse(service.HandleLine(
      R"({"op":"stats","task":"whatever"})"));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->Find("ok")->bool_value());
  EXPECT_NE(response->Find("error")->str().find("artifact-dir"),
            std::string::npos);
  for (const char* line :
       {R"({"op":"load","task":"t"})", R"({"op":"unload","task":"t"})",
        R"({"op":"list_tasks"})"}) {
    auto op_response = JsonValue::Parse(service.HandleLine(line));
    ASSERT_TRUE(op_response.ok());
    EXPECT_FALSE(op_response->Find("ok")->bool_value()) << line;
  }
}

class ServeGatewayTest : public ServeServiceTest {
 protected:
  static void SetUpTestSuite() {
    ServeServiceTest::SetUpTestSuite();
    dir_ = new std::string(::testing::TempDir() + "/gateway_tasks");
    std::filesystem::create_directories(*dir_);
    // Two tasks with different pools => different fitted states.
    ASSERT_TRUE((*session_)->Save(*dir_ + "/alpha.ggsa").ok());
    std::vector<data::Image> pool;
    for (int i = 0; i < 12; ++i) {
      data::Image img = PatternImage(i + 1);
      pool.push_back(std::move(img));
    }
    GogglesConfig goggles_config;
    goggles_config.top_z = 3;
    auto session = serve::Session::Fit(*extractor_, pool, {0, 1, 2, 3},
                                       {1, 0, 1, 0}, 2, goggles_config);
    session.status().Abort("Session::Fit beta");
    beta_ = new std::shared_ptr<const serve::Session>(
        std::make_shared<const serve::Session>(std::move(*session)));
    ASSERT_TRUE((*beta_)->Save(*dir_ + "/beta.ggsa").ok());
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(*dir_, ec);
    delete beta_;
    delete dir_;
    ServeServiceTest::TearDownTestSuite();
  }

  std::unique_ptr<serve::Service> MakeGateway(bool with_default = false) {
    serve::RegistryConfig config;
    config.artifact_dir = *dir_;
    auto registry =
        std::make_shared<serve::SessionRegistry>(*extractor_, config);
    return std::make_unique<serve::Service>(
        registry, with_default ? *session_ : nullptr, serve::ServiceConfig{});
  }

  static std::string* dir_;
  static std::shared_ptr<const serve::Session>* beta_;
};

std::string* ServeGatewayTest::dir_ = nullptr;
std::shared_ptr<const serve::Session>* ServeGatewayTest::beta_ = nullptr;

TEST_F(ServeGatewayTest, RoutesLabelRequestsByTask) {
  auto gateway_ptr = MakeGateway();
  serve::Service& gateway = *gateway_ptr;
  const data::Image query = PatternImage(60);
  for (const auto& [task, session] :
       {std::pair<std::string, const serve::Session*>{"alpha",
                                                      session_->get()},
        std::pair<std::string, const serve::Session*>{"beta",
                                                      beta_->get()}}) {
    const std::string line = std::string(R"({"op":"label","task":")") + task +
                             R"(","image":)" + ImageToJson(query) + "}";
    auto response = JsonValue::Parse(gateway.HandleLine(line));
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->Find("ok")->bool_value())
        << response->Find("error")->str();
    auto direct = session->LabelOne(query);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(static_cast<int>(response->Find("label")->number()),
              direct->hard)
        << "task " << task << " routed to the wrong session";
    const JsonValue* soft = response->Find("soft");
    ASSERT_EQ(soft->items().size(), direct->soft.size());
    for (size_t k = 0; k < direct->soft.size(); ++k) {
      EXPECT_EQ(soft->items()[k].number(), direct->soft[k]);
    }
  }
}

TEST_F(ServeGatewayTest, AbsentTaskNeedsADefaultSession) {
  auto no_default_ptr = MakeGateway(false);
  serve::Service& no_default = *no_default_ptr;
  const std::string line =
      std::string(R"({"op":"label","image":)") + ImageToJson(PatternImage(0)) +
      "}";
  auto response = JsonValue::Parse(no_default.HandleLine(line));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->Find("ok")->bool_value());

  auto with_default_ptr = MakeGateway(true);
  serve::Service& with_default = *with_default_ptr;
  response = JsonValue::Parse(with_default.HandleLine(line));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->Find("ok")->bool_value())
      << response->Find("error")->str();
}

TEST_F(ServeGatewayTest, RegistryOpsLoadUnloadListTasks) {
  auto gateway_ptr = MakeGateway();
  serve::Service& gateway = *gateway_ptr;

  auto list = JsonValue::Parse(gateway.HandleLine(R"({"op":"list_tasks"})"));
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(list->Find("ok")->bool_value());
  const JsonValue* tasks = list->Find("tasks");
  ASSERT_TRUE(tasks != nullptr && tasks->is_array());
  EXPECT_EQ(tasks->items().size(), 2u);  // alpha + beta on disk
  for (const JsonValue& entry : tasks->items()) {
    EXPECT_FALSE(entry.Find("resident")->bool_value());
    EXPECT_TRUE(entry.Find("on_disk")->bool_value());
  }

  auto load = JsonValue::Parse(
      gateway.HandleLine(R"({"op":"load","task":"alpha"})"));
  ASSERT_TRUE(load.ok());
  ASSERT_TRUE(load->Find("ok")->bool_value())
      << load->Find("error")->str();
  EXPECT_EQ(load->Find("task")->str(), "alpha");
  EXPECT_DOUBLE_EQ(load->Find("pool_size")->number(), 12.0);
  EXPECT_GT(load->Find("approx_bytes")->number(), 0.0);

  auto stats = JsonValue::Parse(gateway.HandleLine(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->Find("ok")->bool_value());
  const JsonValue* registry = stats->Find("registry");
  ASSERT_TRUE(registry != nullptr && registry->is_object());
  EXPECT_DOUBLE_EQ(registry->Find("resident_tasks")->number(), 1.0);
  EXPECT_DOUBLE_EQ(registry->Find("loads")->number(), 1.0);

  auto unload = JsonValue::Parse(
      gateway.HandleLine(R"({"op":"unload","task":"alpha"})"));
  ASSERT_TRUE(unload.ok());
  EXPECT_TRUE(unload->Find("ok")->bool_value());
  auto again = JsonValue::Parse(
      gateway.HandleLine(R"({"op":"unload","task":"alpha"})"));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->Find("ok")->bool_value()) << "double unload accepted";

  auto missing = JsonValue::Parse(
      gateway.HandleLine(R"({"op":"load","task":"no_such_task"})"));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->Find("ok")->bool_value());
  auto traversal = JsonValue::Parse(
      gateway.HandleLine(R"({"op":"label","task":"../alpha","image":{}})"));
  ASSERT_TRUE(traversal.ok());
  EXPECT_FALSE(traversal->Find("ok")->bool_value());
}

TEST_F(ServeGatewayTest, StatsForANamedTaskReportsItsShape) {
  auto gateway_ptr = MakeGateway();
  serve::Service& gateway = *gateway_ptr;
  auto stats = JsonValue::Parse(
      gateway.HandleLine(R"({"op":"stats","task":"beta"})"));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->Find("ok")->bool_value())
      << stats->Find("error")->str();
  EXPECT_DOUBLE_EQ(stats->Find("pool_size")->number(),
                   static_cast<double>((*beta_)->pool_size()));
  auto bad = JsonValue::Parse(
      gateway.HandleLine(R"({"op":"stats","task":"missing"})"));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->Find("ok")->bool_value());
}

TEST_F(ServeGatewayTest, RunRoutesAcrossTasksInOrder) {
  serve::ServiceConfig config;
  config.num_workers = 3;
  config.queue_capacity = 4;
  config.coalesce.enabled = true;
  config.coalesce.max_batch = 4;
  config.coalesce.window_micros = 5000;
  serve::RegistryConfig registry_config;
  registry_config.artifact_dir = *dir_;
  auto registry = std::make_shared<serve::SessionRegistry>(*extractor_,
                                                           registry_config);
  serve::Service gateway(registry, nullptr, config);

  std::ostringstream input;
  std::vector<data::Image> queries;
  std::vector<std::string> routed_tasks;
  for (int i = 0; i < 12; ++i) {
    const std::string task = (i % 2 == 0) ? "alpha" : "beta";
    queries.push_back(PatternImage(70 + i));
    routed_tasks.push_back(task);
    input << R"({"op":"label","task":")" << task << R"(","image":)"
          << ImageToJson(queries.back()) << "}\n";
  }
  std::istringstream in(input.str());
  std::ostringstream out;
  ASSERT_TRUE(gateway.Run(in, out).ok());

  std::istringstream lines(out.str());
  std::string line;
  size_t idx = 0;
  while (std::getline(lines, line)) {
    auto response = JsonValue::Parse(line);
    ASSERT_TRUE(response.ok()) << line;
    ASSERT_TRUE(response->Find("ok")->bool_value()) << line;
    ASSERT_LT(idx, queries.size());
    const serve::Session& session =
        routed_tasks[idx] == "alpha" ? **session_ : **beta_;
    auto direct = session.LabelOne(queries[idx]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(static_cast<int>(response->Find("label")->number()),
              direct->hard)
        << "response " << idx << " (task " << routed_tasks[idx]
        << ") wrong or out of order";
    ++idx;
  }
  EXPECT_EQ(idx, queries.size());
}

}  // namespace
}  // namespace goggles
