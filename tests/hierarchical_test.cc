#include "goggles/hierarchical.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goggles {
namespace {

/// Builds a synthetic affinity matrix in the paper's layout: `good`
/// functions produce block structure (same-class pairs score high), `noisy`
/// functions produce pure noise — mirroring Figure 5.
Matrix SyntheticAffinity(const std::vector<int>& truth, int num_good,
                         int num_noisy, double noise, Rng* rng) {
  const int n = static_cast<int>(truth.size());
  const int alpha = num_good + num_noisy;
  Matrix a(n, static_cast<int64_t>(alpha) * n);
  for (int f = 0; f < alpha; ++f) {
    const bool good = f < num_good;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        double v;
        if (good) {
          const double base = truth[static_cast<size_t>(i)] ==
                                      truth[static_cast<size_t>(j)]
                                  ? 0.8
                                  : 0.2;
          v = base + rng->Gaussian() * noise;
        } else {
          v = rng->Uniform();
        }
        a(i, static_cast<int64_t>(f) * n + j) = v;
      }
    }
  }
  return a;
}

std::vector<int> AlternatingTruth(int n) {
  std::vector<int> truth(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) truth[static_cast<size_t>(i)] = i % 2;
  return truth;
}

double AccuracyOf(const LabelingResult& result, const std::vector<int>& truth) {
  int correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (result.hard_labels[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

TEST(HierarchicalTest, RecoversPlantedClusters) {
  Rng rng(3);
  std::vector<int> truth = AlternatingTruth(60);
  Matrix a = SyntheticAffinity(truth, 5, 5, 0.1, &rng);
  HierarchicalLabeler labeler{HierarchicalConfig{}};
  Result<LabelingResult> result =
      labeler.Fit(a, {0, 1, 2, 3}, {0, 1, 0, 1}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(AccuracyOf(*result, truth), 0.95);
}

TEST(HierarchicalTest, SurvivesManyNoisyFunctions) {
  // The ensemble must identify the informative functions even when 80% of
  // the library is noise (the paper's affinity function selection claim).
  Rng rng(5);
  std::vector<int> truth = AlternatingTruth(50);
  Matrix a = SyntheticAffinity(truth, 2, 8, 0.08, &rng);
  HierarchicalLabeler labeler{HierarchicalConfig{}};
  Result<LabelingResult> result =
      labeler.Fit(a, {0, 1, 2, 3, 4, 5}, {0, 1, 0, 1, 0, 1}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(AccuracyOf(*result, truth), 0.9);
}

TEST(HierarchicalTest, MappingFollowsDevLabels) {
  // Same affinity, but dev labels flipped: output classes must flip too.
  Rng rng(7);
  std::vector<int> truth = AlternatingTruth(40);
  Matrix a = SyntheticAffinity(truth, 4, 2, 0.1, &rng);
  HierarchicalLabeler labeler{HierarchicalConfig{}};
  Result<LabelingResult> normal =
      labeler.Fit(a, {0, 1}, {0, 1}, 2);
  Result<LabelingResult> flipped =
      labeler.Fit(a, {0, 1}, {1, 0}, 2);
  ASSERT_TRUE(normal.ok());
  ASSERT_TRUE(flipped.ok());
  int agreements = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (normal->hard_labels[i] != flipped->hard_labels[i]) ++agreements;
  }
  // Hard labels are complementary.
  EXPECT_GE(agreements, static_cast<int>(truth.size()) - 2);
}

TEST(HierarchicalTest, SoftLabelRowsSumToOne) {
  Rng rng(9);
  std::vector<int> truth = AlternatingTruth(30);
  Matrix a = SyntheticAffinity(truth, 3, 3, 0.15, &rng);
  HierarchicalLabeler labeler{HierarchicalConfig{}};
  Result<LabelingResult> result = labeler.Fit(a, {0, 1}, {0, 1}, 2);
  ASSERT_TRUE(result.ok());
  for (int64_t i = 0; i < result->soft_labels.rows(); ++i) {
    double total = 0.0;
    for (int64_t c = 0; c < result->soft_labels.cols(); ++c) {
      total += result->soft_labels(i, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(HierarchicalTest, BaseLpsExposedPerFunction) {
  Rng rng(11);
  std::vector<int> truth = AlternatingTruth(20);
  Matrix a = SyntheticAffinity(truth, 2, 1, 0.1, &rng);
  HierarchicalLabeler labeler{HierarchicalConfig{}};
  Result<LabelingResult> result = labeler.Fit(a, {0, 1}, {0, 1}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->base_label_predictions.size(), 3u);
  for (const Matrix& lp : result->base_label_predictions) {
    EXPECT_EQ(lp.rows(), 20);
    EXPECT_EQ(lp.cols(), 2);
  }
}

TEST(HierarchicalTest, AblationAveragingStillWorksOnCleanData) {
  Rng rng(13);
  std::vector<int> truth = AlternatingTruth(40);
  Matrix a = SyntheticAffinity(truth, 5, 0, 0.05, &rng);
  HierarchicalConfig config;
  config.use_ensemble = false;  // base-LP averaging ablation
  HierarchicalLabeler labeler{config};
  Result<LabelingResult> result =
      labeler.Fit(a, {0, 1, 2, 3}, {0, 1, 0, 1}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(AccuracyOf(*result, truth), 0.9);
}

TEST(HierarchicalTest, AblationAveragingDegradesWithNoise) {
  // With mostly-noise functions, unweighted averaging should underperform
  // the learned ensemble (this is the point of §4.1's design).
  Rng rng(15);
  std::vector<int> truth = AlternatingTruth(60);
  Matrix a = SyntheticAffinity(truth, 2, 18, 0.08, &rng);
  std::vector<int> dev_idx = {0, 1, 2, 3, 4, 5};
  std::vector<int> dev_lab = {0, 1, 0, 1, 0, 1};

  HierarchicalConfig ensemble_config;
  HierarchicalLabeler ensemble{ensemble_config};
  Result<LabelingResult> with = ensemble.Fit(a, dev_idx, dev_lab, 2);
  ASSERT_TRUE(with.ok());

  HierarchicalConfig avg_config;
  avg_config.use_ensemble = false;
  HierarchicalLabeler averaged{avg_config};
  Result<LabelingResult> without = averaged.Fit(a, dev_idx, dev_lab, 2);
  ASSERT_TRUE(without.ok());

  EXPECT_GE(AccuracyOf(*with, truth) + 1e-9, AccuracyOf(*without, truth));
}

TEST(HierarchicalTest, NoOneHotAblationRuns) {
  Rng rng(17);
  std::vector<int> truth = AlternatingTruth(30);
  Matrix a = SyntheticAffinity(truth, 4, 2, 0.1, &rng);
  HierarchicalConfig config;
  config.one_hot_lp = false;
  HierarchicalLabeler labeler{config};
  Result<LabelingResult> result = labeler.Fit(a, {0, 1}, {0, 1}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(AccuracyOf(*result, truth), 0.8);
}

TEST(HierarchicalTest, RejectsMalformedAffinity) {
  HierarchicalLabeler labeler{HierarchicalConfig{}};
  EXPECT_FALSE(labeler.Fit(Matrix(), {}, {}, 2).ok());
  // Width not a multiple of N.
  EXPECT_FALSE(labeler.Fit(Matrix(4, 7), {}, {}, 2).ok());
}

TEST(HierarchicalTest, ThreeClassInference) {
  Rng rng(19);
  const int n = 60;
  std::vector<int> truth(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) truth[static_cast<size_t>(i)] = i % 3;
  Matrix a = SyntheticAffinity(truth, 5, 2, 0.08, &rng);
  HierarchicalLabeler labeler{HierarchicalConfig{}};
  Result<LabelingResult> result =
      labeler.Fit(a, {0, 1, 2, 3, 4, 5}, {0, 1, 2, 0, 1, 2}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(AccuracyOf(*result, truth), 0.85);
}

}  // namespace
}  // namespace goggles
