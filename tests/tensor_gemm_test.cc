#include "tensor/gemm.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

/// \file tensor_gemm_test.cc
/// \brief Exhaustive SGemm correctness suite against a trivial reference:
/// all four transpose combinations x non-tight lda/ldb/ldc strides x
/// alpha/beta in {0, 1, 0.5} x sizes straddling the packing tile
/// boundaries — plus BLAS-semantics regressions (NaN propagation, the
/// alpha == 0 shortcut) and a multi-thread bit-determinism check.

namespace goggles {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Natural triple-loop reference with double accumulation.
void ReferenceGemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k,
                   float alpha, const float* a, int64_t lda, const float* b,
                   int64_t ldb, float beta, float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      const double prior =
          beta == 0.0f ? 0.0
                       : static_cast<double>(beta) *
                             static_cast<double>(c[i * ldc + j]);
      c[i * ldc + j] =
          static_cast<float>(static_cast<double>(alpha) * acc + prior);
    }
  }
}

std::vector<float> RandomVec(size_t size, Rng* rng) {
  std::vector<float> v(size);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

/// One full comparison of SGemm against the reference for the given
/// geometry. Strides add `slack` columns beyond the tight leading
/// dimension; the slack region is verified untouched.
void CheckCase(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha,
               float beta, int64_t slack, Rng* rng) {
  const int64_t lda = (ta ? m : k) + slack;
  const int64_t ldb = (tb ? k : n) + slack;
  const int64_t ldc = n + slack;
  const int64_t a_rows = ta ? k : m;
  const int64_t b_rows = tb ? n : k;

  std::vector<float> a = RandomVec(static_cast<size_t>(a_rows * lda), rng);
  std::vector<float> b = RandomVec(static_cast<size_t>(b_rows * ldb), rng);
  std::vector<float> c = RandomVec(static_cast<size_t>(m * ldc), rng);
  std::vector<float> expected = c;

  ReferenceGemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
                expected.data(), ldc);
  SGemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c.data(),
        ldc);

  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < ldc; ++j) {
      const float got = c[static_cast<size_t>(i * ldc + j)];
      const float want = expected[static_cast<size_t>(i * ldc + j)];
      const float tol =
          j < n ? 1e-4f * (std::abs(want) + static_cast<float>(k)) : 0.0f;
      ASSERT_NEAR(got, want, tol)
          << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
          << " k=" << k << " alpha=" << alpha << " beta=" << beta
          << " slack=" << slack << " at (" << i << ", " << j << ")";
    }
  }
}

// Sizes straddling the micro-tile (4/8/16) and macro-tile (64) boundaries.
const int64_t kSizes[] = {1, 7, 8, 9, 63, 64, 65};

TEST(SGemmExhaustiveTest, AllTransposesSizesAndStrides) {
  Rng rng(42);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (int64_t m : kSizes) {
        for (int64_t n : kSizes) {
          for (int64_t k : kSizes) {
            const int64_t slack = (m + n + k) % 2 == 0 ? 0 : 3;
            CheckCase(ta, tb, m, n, k, 1.0f, 0.0f, slack, &rng);
          }
        }
      }
    }
  }
}

TEST(SGemmExhaustiveTest, AlphaBetaGrid) {
  Rng rng(43);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (float alpha : {0.0f, 1.0f, 0.5f}) {
        for (float beta : {0.0f, 1.0f, 0.5f}) {
          for (int64_t size : {int64_t{9}, int64_t{65}}) {
            CheckCase(ta, tb, size, size + 1, size - 1, alpha, beta,
                      /*slack=*/3, &rng);
          }
        }
      }
    }
  }
}

// Regression: the old kernel skipped the inner accumulation whenever
// alpha * a(i, p) == 0, so NaN/Inf in B silently failed to propagate.
TEST(SGemmSemanticsTest, NanInBPropagatesThroughZeroInA) {
  // A = [0, 1], B = [[NaN], [2]]: the zero in A multiplies the NaN.
  const std::vector<float> a = {0.0f, 1.0f};
  const std::vector<float> b = {kNaN, 2.0f};
  std::vector<float> c = {0.0f};
  SGemm(false, false, 1, 1, 2, 1.0f, a.data(), 2, b.data(), 1, 0.0f, c.data(),
        1);
  EXPECT_TRUE(std::isnan(c[0])) << "0 * NaN must propagate, got " << c[0];
}

TEST(SGemmSemanticsTest, NanInAPropagates) {
  const std::vector<float> a = {kNaN, 0.0f};
  const std::vector<float> b = {0.0f, 3.0f};
  std::vector<float> c = {1.0f};
  SGemm(false, false, 1, 1, 2, 1.0f, a.data(), 2, b.data(), 1, 0.0f, c.data(),
        1);
  EXPECT_TRUE(std::isnan(c[0]));
}

TEST(SGemmSemanticsTest, InfInBPropagates) {
  const std::vector<float> a = {0.0f, 2.0f};
  const std::vector<float> b = {kInf, 1.0f};
  std::vector<float> c = {0.0f};
  SGemm(false, false, 1, 1, 2, 1.0f, a.data(), 2, b.data(), 1, 0.0f, c.data(),
        1);
  // 0 * inf = NaN joins 2 * 1; NaN + 2 = NaN.
  EXPECT_TRUE(std::isnan(c[0]));
}

// BLAS: alpha == 0 means A and B are not referenced at all — NaN there
// must NOT reach C, and C = beta * C exactly.
TEST(SGemmSemanticsTest, AlphaZeroDoesNotReferenceAOrB) {
  const std::vector<float> a = {kNaN, kNaN, kNaN, kNaN};
  const std::vector<float> b = {kNaN, kNaN, kNaN, kNaN};
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  SGemm(false, false, 2, 2, 2, 0.0f, a.data(), 2, b.data(), 2, 0.5f, c.data(),
        2);
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

// BLAS: beta == 0 overwrites C without reading it — stale NaN in C must
// not survive.
TEST(SGemmSemanticsTest, BetaZeroOverwritesStaleNaN) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {2.0f};
  std::vector<float> c = {kNaN};
  SGemm(false, false, 1, 1, 1, 1.0f, a.data(), 1, b.data(), 1, 0.0f, c.data(),
        1);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

// The serving path depends on this: every C element is accumulated in a
// fixed order regardless of the worker-thread count, so results are
// bit-identical at 1 and N threads.
TEST(SGemmDeterminismTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(44);
  const int64_t m = 130, n = 70, k = 90;
  std::vector<float> a = RandomVec(static_cast<size_t>(m * k), &rng);
  std::vector<float> b = RandomVec(static_cast<size_t>(k * n), &rng);
  std::vector<float> c1(static_cast<size_t>(m * n), 0.0f);
  SGemmWithThreads(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
                   c1.data(), n, /*num_threads=*/1);
  for (int threads : {2, 3, 8}) {
    std::vector<float> cn(static_cast<size_t>(m * n), 0.0f);
    SGemmWithThreads(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                     0.0f, cn.data(), n, threads);
    ASSERT_EQ(std::memcmp(c1.data(), cn.data(), c1.size() * sizeof(float)), 0)
        << "results diverge at " << threads << " threads";
  }
}

// The batched affinity scorer additionally relies on shape-independence:
// the same logical dot product computed inside GEMMs of different heights
// must produce the identical float.
TEST(SGemmDeterminismTest, RowResultIndependentOfProblemHeight) {
  Rng rng(45);
  const int64_t n = 48, k = 33;
  std::vector<float> a = RandomVec(static_cast<size_t>(200 * k), &rng);
  std::vector<float> b = RandomVec(static_cast<size_t>(k * n), &rng);
  std::vector<float> big(static_cast<size_t>(200 * n), 0.0f);
  SGemm(false, false, 200, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
        big.data(), n);
  // Row 137 recomputed as a 1-row GEMM must match bit for bit.
  std::vector<float> one(static_cast<size_t>(n), 0.0f);
  SGemm(false, false, 1, n, k, 1.0f, a.data() + 137 * k, k, b.data(), n, 0.0f,
        one.data(), n);
  ASSERT_EQ(std::memcmp(big.data() + 137 * n, one.data(),
                        one.size() * sizeof(float)),
            0);
}

TEST(SGemmDeterminismTest, MatchesNaiveOrderForSmallK) {
  // With k <= KC the kernel accumulates each element serially in ascending
  // k; spot-check exact equality against that order.
  Rng rng(46);
  const int64_t m = 5, n = 17, k = 12;
  std::vector<float> a = RandomVec(static_cast<size_t>(m * k), &rng);
  std::vector<float> b = RandomVec(static_cast<size_t>(k * n), &rng);
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  SGemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
        n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc = std::fma(a[static_cast<size_t>(i * k + p)],
                       b[static_cast<size_t>(p * n + j)], acc);
      }
      const float plain = [&] {
        float s = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
          s += a[static_cast<size_t>(i * k + p)] *
               b[static_cast<size_t>(p * n + j)];
        }
        return s;
      }();
      const float got = c[static_cast<size_t>(i * n + j)];
      EXPECT_TRUE(got == acc || got == plain)
          << "element (" << i << ", " << j
          << ") matches neither the fma nor the plain ascending-k order";
    }
  }
}

}  // namespace
}  // namespace goggles
