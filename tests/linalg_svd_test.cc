#include "linalg/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goggles {
namespace {

/// Builds a random rank-r matrix (m x n) as sum of r outer products.
Matrix RandomLowRank(int m, int n, int r, Rng* rng) {
  Matrix out(m, n, 0.0);
  for (int c = 0; c < r; ++c) {
    std::vector<double> u(static_cast<size_t>(m)), v(static_cast<size_t>(n));
    for (auto& x : u) x = rng->Gaussian();
    for (auto& x : v) x = rng->Gaussian();
    const double scale = static_cast<double>(r - c);  // descending strength
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        out(i, j) += scale * u[static_cast<size_t>(i)] * v[static_cast<size_t>(j)];
      }
    }
  }
  return out;
}

double ReconstructionError(const Matrix& a, const SvdResult& svd) {
  double err = 0.0, norm = 0.0;
  const int k = static_cast<int>(svd.s.size());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      double rec = 0.0;
      for (int c = 0; c < k; ++c) {
        rec += svd.s[static_cast<size_t>(c)] * svd.u(i, c) * svd.v(j, c);
      }
      err += (a(i, j) - rec) * (a(i, j) - rec);
      norm += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(err / std::max(norm, 1e-30));
}

TEST(SvdTest, ExactRecoveryOfLowRank) {
  Rng rng(7);
  Matrix a = RandomLowRank(20, 12, 3, &rng);
  Result<SvdResult> svd = TruncatedSvd(a, 3, 80);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(ReconstructionError(a, *svd), 1e-6);
}

TEST(SvdTest, WideMatrixRecovery) {
  Rng rng(11);
  Matrix a = RandomLowRank(10, 50, 2, &rng);
  Result<SvdResult> svd = TruncatedSvd(a, 2, 80);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(ReconstructionError(a, *svd), 1e-6);
}

TEST(SvdTest, TallMatrixRecovery) {
  Rng rng(13);
  Matrix a = RandomLowRank(50, 10, 2, &rng);
  Result<SvdResult> svd = TruncatedSvd(a, 2, 80);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(ReconstructionError(a, *svd), 1e-6);
}

TEST(SvdTest, SingularValuesDescendingAndNonNegative) {
  Rng rng(17);
  Matrix a = RandomLowRank(15, 15, 5, &rng);
  Result<SvdResult> svd = TruncatedSvd(a, 5, 80);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 0; i < svd->s.size(); ++i) {
    EXPECT_GE(svd->s[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd->s[i], svd->s[i - 1] + 1e-9);
    }
  }
}

TEST(SvdTest, FactorsOrthonormal) {
  Rng rng(19);
  Matrix a = RandomLowRank(18, 14, 4, &rng);
  Result<SvdResult> svd = TruncatedSvd(a, 4, 100);
  ASSERT_TRUE(svd.ok());
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double dot_u = 0.0, dot_v = 0.0;
      for (int64_t r = 0; r < svd->u.rows(); ++r) dot_u += svd->u(r, i) * svd->u(r, j);
      for (int64_t r = 0; r < svd->v.rows(); ++r) dot_v += svd->v(r, i) * svd->v(r, j);
      EXPECT_NEAR(dot_u, i == j ? 1.0 : 0.0, 1e-6);
      EXPECT_NEAR(dot_v, i == j ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(SvdTest, KnownDiagonalSingularValues) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 4.0;
  a(1, 1) = 2.0;
  a(2, 2) = 1.0;
  Result<SvdResult> svd = TruncatedSvd(a, 3, 100);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->s[0], 4.0, 1e-8);
  EXPECT_NEAR(svd->s[1], 2.0, 1e-8);
  EXPECT_NEAR(svd->s[2], 1.0, 1e-8);
}

TEST(SvdTest, KClampedToMinDimension) {
  Rng rng(23);
  Matrix a = RandomLowRank(4, 9, 2, &rng);
  Result<SvdResult> svd = TruncatedSvd(a, 100, 50);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->s.size(), 4u);
}

TEST(SvdTest, InvalidInputsRejected) {
  EXPECT_FALSE(TruncatedSvd(Matrix(), 2).ok());
  EXPECT_FALSE(TruncatedSvd(Matrix(3, 3, 1.0), 0).ok());
}

TEST(SvdTest, DeterministicForFixedSeed) {
  Rng rng(29);
  Matrix a = RandomLowRank(12, 12, 3, &rng);
  Result<SvdResult> s1 = TruncatedSvd(a, 2, 60, /*seed=*/5);
  Result<SvdResult> s2 = TruncatedSvd(a, 2, 60, /*seed=*/5);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (size_t i = 0; i < s1->s.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1->s[i], s2->s[i]);
  }
}

}  // namespace
}  // namespace goggles
