#include "baselines/snuba.h"

#include <gtest/gtest.h>

#include "baselines/label_model.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace goggles::baselines {
namespace {

/// Primitives where dimension 0 separates the classes and the rest are
/// noise — Snuba should find a near-perfect stump.
Matrix SeparablePrimitives(int n_per, int dim, Rng* rng,
                           std::vector<int>* truth) {
  Matrix p(2 * n_per, dim);
  for (int i = 0; i < 2 * n_per; ++i) {
    const int label = i < n_per ? 0 : 1;
    truth->push_back(label);
    p(i, 0) = (label == 0 ? -2.0 : 2.0) + rng->Gaussian() * 0.3;
    for (int j = 1; j < dim; ++j) p(i, j) = rng->Gaussian();
  }
  return p;
}

std::vector<int> HardLabels(const Matrix& proba) {
  std::vector<int> out;
  for (int64_t i = 0; i < proba.rows(); ++i) {
    out.push_back(proba(i, 1) > proba(i, 0) ? 1 : 0);
  }
  return out;
}

TEST(SnubaHeuristicTest, VoteSemantics) {
  SnubaHeuristic h;
  h.feature = 0;
  h.threshold = 1.0;
  h.margin = 0.25;
  h.high_class = 1;
  const double above[1] = {2.0};
  const double below[1] = {0.0};
  const double in_band[1] = {1.1};
  EXPECT_EQ(h.Vote(above), 1);
  EXPECT_EQ(h.Vote(below), 0);
  EXPECT_EQ(h.Vote(in_band), kAbstainVote);
}

TEST(SnubaHeuristicTest, PolarityFlips) {
  SnubaHeuristic h;
  h.feature = 0;
  h.threshold = 0.0;
  h.margin = 0.0;
  h.high_class = 0;
  const double above[1] = {1.0};
  EXPECT_EQ(h.Vote(above), 0);
}

TEST(SnubaTest, SolvesSeparableTask) {
  Rng rng(3);
  std::vector<int> truth;
  Matrix primitives = SeparablePrimitives(50, 10, &rng, &truth);
  std::vector<int> dev_indices = {0, 1, 2, 3, 4, 50, 51, 52, 53, 54};
  std::vector<int> dev_labels = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  SnubaConfig config;
  Result<SnubaResult> result =
      RunSnuba(primitives, dev_indices, dev_labels, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->heuristics.size(), 1u);
  EXPECT_GE(eval::Accuracy(HardLabels(result->proba), truth), 0.95);
}

TEST(SnubaTest, NearRandomOnUninformativePrimitives) {
  // Pure-noise primitives: Snuba can at best be slightly better than
  // random — this mirrors the paper's observation that Snuba degrades to
  // near-random without human-designed primitives.
  Rng rng(5);
  const int n = 200;
  std::vector<int> truth;
  Matrix primitives(n, 8);
  for (int i = 0; i < n; ++i) {
    truth.push_back(i % 2);
    for (int j = 0; j < 8; ++j) primitives(i, j) = rng.Gaussian();
  }
  std::vector<int> dev_indices, dev_labels;
  for (int i = 0; i < 10; ++i) {
    dev_indices.push_back(i);
    dev_labels.push_back(truth[static_cast<size_t>(i)]);
  }
  SnubaConfig config;
  Result<SnubaResult> result =
      RunSnuba(primitives, dev_indices, dev_labels, config);
  ASSERT_TRUE(result.ok());
  const double acc = eval::Accuracy(HardLabels(result->proba), truth);
  EXPECT_LT(acc, 0.7);  // no magic on noise
}

TEST(SnubaTest, CommitsAtMostMaxHeuristics) {
  Rng rng(7);
  std::vector<int> truth;
  Matrix primitives = SeparablePrimitives(30, 6, &rng, &truth);
  std::vector<int> dev_indices = {0, 1, 2, 30, 31, 32};
  std::vector<int> dev_labels = {0, 0, 0, 1, 1, 1};
  SnubaConfig config;
  config.max_heuristics = 2;
  Result<SnubaResult> result =
      RunSnuba(primitives, dev_indices, dev_labels, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->heuristics.size(), 2u);
  EXPECT_EQ(result->votes.cols(),
            static_cast<int64_t>(result->heuristics.size()));
}

TEST(SnubaTest, VotesMatrixCoversAllInstances) {
  Rng rng(9);
  std::vector<int> truth;
  Matrix primitives = SeparablePrimitives(20, 4, &rng, &truth);
  std::vector<int> dev_indices = {0, 1, 20, 21};
  std::vector<int> dev_labels = {0, 0, 1, 1};
  Result<SnubaResult> result =
      RunSnuba(primitives, dev_indices, dev_labels, SnubaConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->votes.rows(), 40);
  EXPECT_EQ(result->proba.rows(), 40);
  EXPECT_EQ(result->proba.cols(), 2);
}

TEST(SnubaTest, RequiresDevSet) {
  Matrix primitives(10, 3, 0.0);
  EXPECT_FALSE(RunSnuba(primitives, {}, {}, SnubaConfig{}).ok());
}

TEST(SnubaTest, MulticlassNotImplemented) {
  Matrix primitives(10, 3, 0.0);
  SnubaConfig config;
  config.num_classes = 3;
  EXPECT_FALSE(RunSnuba(primitives, {0}, {0}, config).ok());
}

TEST(SnubaTest, HeuristicsHaveRecordedDevF1) {
  Rng rng(11);
  std::vector<int> truth;
  Matrix primitives = SeparablePrimitives(30, 5, &rng, &truth);
  std::vector<int> dev_indices = {0, 1, 2, 30, 31, 32};
  std::vector<int> dev_labels = {0, 0, 0, 1, 1, 1};
  Result<SnubaResult> result =
      RunSnuba(primitives, dev_indices, dev_labels, SnubaConfig{});
  ASSERT_TRUE(result.ok());
  for (const SnubaHeuristic& h : result->heuristics) {
    EXPECT_GE(h.dev_f1, 0.0);
    EXPECT_LE(h.dev_f1, 1.0);
  }
  // The first committed heuristic on a separable task is near-perfect.
  EXPECT_GT(result->heuristics[0].dev_f1, 0.9);
}

}  // namespace
}  // namespace goggles::baselines
