#include "goggles/ensemble.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goggles {
namespace {

/// Binary data from two Bernoulli profiles: component 0 mostly zeros with
/// ones in the first half, component 1 the reverse.
Matrix TwoProfiles(int n_per, int dim, double flip, Rng* rng,
                   std::vector<int>* truth = nullptr) {
  Matrix b(2 * n_per, dim);
  for (int i = 0; i < 2 * n_per; ++i) {
    const int label = i < n_per ? 0 : 1;
    if (truth != nullptr) truth->push_back(label);
    for (int j = 0; j < dim; ++j) {
      const bool base = (label == 0) == (j < dim / 2);
      const bool bit = rng->Bernoulli(flip) ? !base : base;
      b(i, j) = bit ? 1.0 : 0.0;
    }
  }
  return b;
}

TEST(BernoulliMixtureTest, SeparatesProfiles) {
  Rng rng(3);
  std::vector<int> truth;
  Matrix b = TwoProfiles(40, 10, 0.1, &rng, &truth);
  BernoulliMixtureConfig config;
  config.num_components = 2;
  BernoulliMixture mix(config);
  ASSERT_TRUE(mix.Fit(b).ok());
  Result<Matrix> proba = mix.PredictProba(b);
  ASSERT_TRUE(proba.ok());
  int agree = 0;
  for (int i = 0; i < 80; ++i) {
    const int pred = (*proba)(i, 0) > (*proba)(i, 1) ? 0 : 1;
    if (pred == truth[static_cast<size_t>(i)]) ++agree;
  }
  EXPECT_GE(std::max(agree, 80 - agree), 78);
}

TEST(BernoulliMixtureTest, PosteriorRowsSumToOne) {
  Rng rng(5);
  Matrix b = TwoProfiles(20, 8, 0.2, &rng);
  BernoulliMixtureConfig config;
  BernoulliMixture mix(config);
  ASSERT_TRUE(mix.Fit(b).ok());
  Result<Matrix> proba = mix.PredictProba(b);
  ASSERT_TRUE(proba.ok());
  for (int64_t i = 0; i < proba->rows(); ++i) {
    double total = 0.0;
    for (int64_t c = 0; c < proba->cols(); ++c) total += (*proba)(i, c);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(BernoulliMixtureTest, ParametersStayInOpenUnitInterval) {
  // All-ones data: without smoothing the MLE would hit exactly 1 (the
  // paper's singularity problem); smoothing must keep it inside (0, 1).
  Matrix b(10, 4, 1.0);
  BernoulliMixtureConfig config;
  BernoulliMixture mix(config);
  ASSERT_TRUE(mix.Fit(b).ok());
  for (int64_t c = 0; c < mix.bernoulli_params().rows(); ++c) {
    for (int64_t j = 0; j < mix.bernoulli_params().cols(); ++j) {
      EXPECT_GT(mix.bernoulli_params()(c, j), 0.0);
      EXPECT_LT(mix.bernoulli_params()(c, j), 1.0);
    }
  }
}

class BernoulliMonotoneSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(BernoulliMonotoneSweep, LogLikelihoodNonDecreasing) {
  const double flip = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);
  Matrix b = TwoProfiles(30, 12, flip, &rng);
  BernoulliMixtureConfig config;
  config.num_components = 2;
  config.seed = seed;
  config.num_restarts = 1;
  config.tol = 0.0;
  config.max_iters = 30;
  BernoulliMixture mix(config);
  ASSERT_TRUE(mix.Fit(b).ok());
  const auto& history = mix.log_likelihood_history();
  ASSERT_GE(history.size(), 2u);
  for (size_t i = 1; i < history.size(); ++i) {
    ASSERT_GE(history[i], history[i - 1] - 1e-6) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Property, BernoulliMonotoneSweep,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.4),
                       ::testing::Values(2ULL, 23ULL, 99ULL)));

TEST(BernoulliMixtureTest, FewerSamplesThanComponentsRejected) {
  BernoulliMixtureConfig config;
  config.num_components = 5;
  BernoulliMixture mix(config);
  EXPECT_FALSE(mix.Fit(Matrix(2, 3, 1.0)).ok());
}

TEST(BernoulliMixtureTest, PredictBeforeFitRejected) {
  BernoulliMixture mix{BernoulliMixtureConfig{}};
  EXPECT_FALSE(mix.PredictProba(Matrix(2, 3)).ok());
}

TEST(OneHotTest, ArgmaxBecomesOne) {
  // Two LP matrices for 3 instances, K=2.
  Matrix lp1 = Matrix::FromRows({{0.9, 0.1}, {0.2, 0.8}, {0.55, 0.45}});
  Matrix lp2 = Matrix::FromRows({{0.3, 0.7}, {0.6, 0.4}, {0.5, 0.5}});
  Matrix onehot = OneHotConcatLabelPredictions({lp1, lp2});
  EXPECT_EQ(onehot.rows(), 3);
  EXPECT_EQ(onehot.cols(), 4);  // alpha*K = 2*2
  // Instance 0: lp1 argmax = 0, lp2 argmax = 1.
  EXPECT_DOUBLE_EQ(onehot(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(onehot(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(onehot(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(onehot(0, 3), 1.0);
  // Ties go to the first class.
  EXPECT_DOUBLE_EQ(onehot(2, 2), 1.0);
  // Every instance has exactly one 1 per function block.
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(onehot(i, 0) + onehot(i, 1), 1.0);
    EXPECT_DOUBLE_EQ(onehot(i, 2) + onehot(i, 3), 1.0);
  }
}

TEST(OneHotTest, ConcatWithoutOneHotKeepsProbabilities) {
  Matrix lp1 = Matrix::FromRows({{0.9, 0.1}});
  Matrix lp2 = Matrix::FromRows({{0.3, 0.7}});
  Matrix concat = ConcatLabelPredictions({lp1, lp2});
  EXPECT_DOUBLE_EQ(concat(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(concat(0, 3), 0.7);
}

TEST(OneHotTest, EmptyInputGivesEmptyMatrix) {
  EXPECT_TRUE(OneHotConcatLabelPredictions({}).empty());
  EXPECT_TRUE(ConcatLabelPredictions({}).empty());
}

}  // namespace
}  // namespace goggles
