#include "linalg/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goggles {
namespace {

TEST(PcaTest, RecoversDominantDirection) {
  // Points along the direction (1, 1)/sqrt(2) with small orthogonal noise.
  Rng rng(3);
  Matrix data(200, 2);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.Gaussian() * 10.0;
    const double noise = rng.Gaussian() * 0.1;
    data(i, 0) = t + noise;
    data(i, 1) = t - noise;
  }
  Result<Pca> pca = Pca::Fit(data, 2);
  ASSERT_TRUE(pca.ok());
  // First component captures almost all variance.
  EXPECT_GT(pca->explained_variance()[0], 50.0);
  EXPECT_LT(pca->explained_variance()[1], 1.0);
}

TEST(PcaTest, ExplainedVarianceDescending) {
  Rng rng(5);
  Matrix data(100, 6);
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 6; ++j) {
      data(i, j) = rng.Gaussian() * static_cast<double>(6 - j);
    }
  }
  Result<Pca> pca = Pca::Fit(data, 6);
  ASSERT_TRUE(pca.ok());
  for (size_t i = 1; i < pca->explained_variance().size(); ++i) {
    EXPECT_LE(pca->explained_variance()[i],
              pca->explained_variance()[i - 1] + 1e-9);
  }
}

TEST(PcaTest, TransformShapeAndCentering) {
  Rng rng(7);
  Matrix data(50, 4);
  for (int64_t i = 0; i < data.size(); ++i) {
    data.data()[i] = rng.Uniform(0.0, 10.0);
  }
  Result<Pca> pca = Pca::Fit(data, 2);
  ASSERT_TRUE(pca.ok());
  Result<Matrix> projected = pca->Transform(data);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->rows(), 50);
  EXPECT_EQ(projected->cols(), 2);
  // Projection of training data is centered.
  std::vector<double> means = ColumnMeans(*projected);
  EXPECT_NEAR(means[0], 0.0, 1e-9);
  EXPECT_NEAR(means[1], 0.0, 1e-9);
}

TEST(PcaTest, ProjectionVarianceMatchesEigenvalue) {
  Rng rng(11);
  Matrix data(300, 3);
  for (int i = 0; i < 300; ++i) {
    data(i, 0) = rng.Gaussian() * 3.0;
    data(i, 1) = rng.Gaussian();
    data(i, 2) = rng.Gaussian() * 0.2;
  }
  Result<Pca> pca = Pca::Fit(data, 1);
  ASSERT_TRUE(pca.ok());
  Result<Matrix> projected = pca->Transform(data);
  ASSERT_TRUE(projected.ok());
  double var = 0.0;
  for (int i = 0; i < 300; ++i) var += (*projected)(i, 0) * (*projected)(i, 0);
  var /= 299.0;
  EXPECT_NEAR(var, pca->explained_variance()[0],
              0.05 * pca->explained_variance()[0]);
}

TEST(PcaTest, NumComponentsClamped) {
  Matrix data = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Result<Pca> pca = Pca::Fit(data, 10);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->num_components(), 2);
}

TEST(PcaTest, InvalidInputsRejected) {
  EXPECT_FALSE(Pca::Fit(Matrix(1, 3, 1.0), 1).ok());
  Matrix ok_data = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_FALSE(Pca::Fit(ok_data, 0).ok());
  Result<Pca> pca = Pca::Fit(ok_data, 1);
  ASSERT_TRUE(pca.ok());
  EXPECT_FALSE(pca->Transform(Matrix(2, 5)).ok());
}

}  // namespace
}  // namespace goggles
