#include "util/status.h"

#include <gtest/gtest.h>

namespace goggles {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("oob").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("ae").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotImplemented("ni").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IOError("io").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("in").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("in").message(), "in");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status st = Status::InvalidArgument("expected positive k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: expected positive k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status ChainedCheck(int x) {
  GOGGLES_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(ChainedCheck(1).ok());
  EXPECT_EQ(ChainedCheck(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Doubler(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UsesAssignOrReturn(int x) {
  GOGGLES_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  return doubled + 1;
}

TEST(StatusMacroTest, AssignOrReturnBindsValue) {
  Result<int> r = UsesAssignOrReturn(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 11);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesError) {
  Result<int> r = UsesAssignOrReturn(-5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, RetryableFailureCodes) {
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("busy").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Unavailable("busy").ToString(), "Unavailable: busy");
}

TEST(StatusTest, ErrorCodesAreStableProtocolStrings) {
  // These strings are the wire-visible `error_code` values of the serve
  // protocol (docs/serve_protocol.md) — renaming one is a protocol break.
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kOutOfRange),
               "out_of_range");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kAlreadyExists),
               "already_exists");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kNotImplemented),
               "unimplemented");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kIOError), "io_error");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kInternal), "internal");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StatusCodeToErrorCode(StatusCode::kUnavailable),
               "unavailable");
}

}  // namespace
}  // namespace goggles
