#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "util/rng.h"

namespace goggles {
namespace {

TEST(GemmTest, PlainProduct) {
  // C[2,2] = A[2,3] * B[3,2]
  const float a[6] = {1, 2, 3, 4, 5, 6};
  const float b[6] = {7, 8, 9, 10, 11, 12};
  float c[4] = {0, 0, 0, 0};
  SGemm(false, false, 2, 2, 3, 1.0f, a, 3, b, 2, 0.0f, c, 2);
  EXPECT_FLOAT_EQ(c[0], 58.0f);
  EXPECT_FLOAT_EQ(c[1], 64.0f);
  EXPECT_FLOAT_EQ(c[2], 139.0f);
  EXPECT_FLOAT_EQ(c[3], 154.0f);
}

TEST(GemmTest, TransposeA) {
  // A is stored 3x2; op(A) = A^T is 2x3.
  const float a[6] = {1, 4, 2, 5, 3, 6};
  const float b[6] = {7, 8, 9, 10, 11, 12};
  float c[4] = {0, 0, 0, 0};
  SGemm(true, false, 2, 2, 3, 1.0f, a, 2, b, 2, 0.0f, c, 2);
  EXPECT_FLOAT_EQ(c[0], 58.0f);
  EXPECT_FLOAT_EQ(c[3], 154.0f);
}

TEST(GemmTest, TransposeB) {
  const float a[6] = {1, 2, 3, 4, 5, 6};
  // B stored 2x3; op(B) = B^T is 3x2.
  const float b[6] = {7, 9, 11, 8, 10, 12};
  float c[4] = {0, 0, 0, 0};
  SGemm(false, true, 2, 2, 3, 1.0f, a, 3, b, 3, 0.0f, c, 2);
  EXPECT_FLOAT_EQ(c[0], 58.0f);
  EXPECT_FLOAT_EQ(c[3], 154.0f);
}

TEST(GemmTest, AlphaBetaBlend) {
  const float a[1] = {2};
  const float b[1] = {3};
  float c[1] = {10};
  SGemm(false, false, 1, 1, 1, 2.0f, a, 1, b, 1, 0.5f, c, 1);
  EXPECT_FLOAT_EQ(c[0], 17.0f);  // 2*2*3 + 0.5*10
}

TEST(Im2ColTest, IdentityKernelLayout) {
  // 1 channel, 2x2 image, 1x1 kernel, stride 1, no pad: col == image.
  const float x[4] = {1, 2, 3, 4};
  float col[4];
  Im2Col(x, 1, 2, 2, 1, 1, 1, 0, col);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(col[i], x[i]);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  const float x[1] = {5};
  // 1x1 image, 3x3 kernel, pad 1 -> single output position, 9 rows.
  float col[9];
  Im2Col(x, 1, 1, 1, 3, 3, 1, 1, col);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(col[i], i == 4 ? 5.0f : 0.0f);
  }
}

TEST(Im2ColTest, Col2ImIsAdjoint) {
  // <Im2Col(x), y> == <x, Col2Im(y)> for random x, y (adjointness is what
  // conv backward relies on).
  Rng rng(7);
  const int c = 2, h = 5, w = 4, kh = 3, kw = 3, stride = 2, pad = 1;
  const int oh = ConvOutDim(h, kh, stride, pad);
  const int ow = ConvOutDim(w, kw, stride, pad);
  const int col_size = c * kh * kw * oh * ow;

  std::vector<float> x(static_cast<size_t>(c * h * w));
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  std::vector<float> y(static_cast<size_t>(col_size));
  for (auto& v : y) v = static_cast<float>(rng.Gaussian());

  std::vector<float> col(static_cast<size_t>(col_size));
  Im2Col(x.data(), c, h, w, kh, kw, stride, pad, col.data());
  std::vector<float> xt(static_cast<size_t>(c * h * w), 0.0f);
  Col2Im(y.data(), c, h, w, kh, kw, stride, pad, xt.data());

  double lhs = 0.0, rhs = 0.0;
  for (size_t i = 0; i < col.size(); ++i) lhs += static_cast<double>(col[i]) * y[i];
  for (size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * xt[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ConvTest, KnownConvolution) {
  // 1x1x3x3 input, single 3x3 averaging-like kernel, pad 1.
  Tensor x({1, 1, 3, 3});
  for (int i = 0; i < 9; ++i) x[i] = static_cast<float>(i + 1);
  Tensor w({1, 1, 3, 3}, 1.0f);  // all-ones kernel
  Tensor b({1});
  Result<Tensor> y = Conv2dForward(x, w, b, {1, 1});
  ASSERT_TRUE(y.ok());
  // Center output = sum of all inputs = 45.
  EXPECT_FLOAT_EQ(y->At4(0, 0, 1, 1), 45.0f);
  // Top-left output = sum of the 2x2 upper-left block = 1+2+4+5 = 12.
  EXPECT_FLOAT_EQ(y->At4(0, 0, 0, 0), 12.0f);
}

TEST(ConvTest, BiasApplied) {
  Tensor x({1, 1, 2, 2}, 0.0f);
  Tensor w({2, 1, 1, 1}, 0.0f);
  Tensor b = Tensor::FromVector({1.5f, -2.5f});
  Result<Tensor> y = Conv2dForward(x, w, b, {1, 0});
  ASSERT_TRUE(y.ok());
  EXPECT_FLOAT_EQ(y->At4(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y->At4(0, 1, 1, 1), -2.5f);
}

TEST(ConvTest, StrideGeometry) {
  Tensor x({1, 1, 8, 8}, 1.0f);
  Tensor w({1, 1, 3, 3}, 1.0f);
  Tensor b({1});
  Result<Tensor> y = Conv2dForward(x, w, b, {2, 1});
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->dim(2), 4);
  EXPECT_EQ(y->dim(3), 4);
}

TEST(ConvTest, ShapeValidation) {
  Tensor x({1, 2, 4, 4});
  Tensor w({3, 1, 3, 3});  // channel mismatch
  Tensor b({3});
  EXPECT_FALSE(Conv2dForward(x, w, b, {1, 1}).ok());
}

TEST(ConvTest, FusedBatchPathIsBitIdenticalToPerImage) {
  // The small-spatial batched-inference path (one fused GEMM over every
  // image's im2col columns) must reproduce the per-image path bit for
  // bit: the serving coalescer depends on batch-vs-singleton equality.
  Rng rng(20260727);
  for (const int64_t hw : {2, 4, 8}) {  // all <= the fused threshold
    Tensor x = Tensor::RandomNormal({8, 24, hw, hw}, 1.0f, &rng);
    Tensor w = Tensor::RandomNormal({32, 24, 3, 3}, 0.5f, &rng);
    Tensor b = Tensor::RandomNormal({32}, 0.1f, &rng);
    Result<Tensor> batched = Conv2dForward(x, w, b, {1, 1});
    ASSERT_TRUE(batched.ok());
    const int64_t per_image = 24 * hw * hw;
    for (int64_t i = 0; i < 8; ++i) {
      Tensor xi({1, 24, hw, hw});
      std::copy(x.data() + i * per_image, x.data() + (i + 1) * per_image,
                xi.data());
      Result<Tensor> single = Conv2dForward(xi, w, b, {1, 1});
      ASSERT_TRUE(single.ok());
      ASSERT_EQ(single->NumElements(), batched->NumElements() / 8);
      const float* batch_i =
          batched->data() + i * single->NumElements();
      for (int64_t e = 0; e < single->NumElements(); ++e) {
        ASSERT_EQ((*single)[e], batch_i[e])
            << "fused conv diverges at hw=" << hw << " image " << i
            << " element " << e;
      }
    }
  }
}

TEST(MaxPoolTest, SelectsMaxAndRecordsArgmax) {
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 4.0f;
  x[2] = 3.0f;
  x[3] = 2.0f;
  Result<MaxPoolResult> r = MaxPool2dForward(x, 2, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(r->y[0], 4.0f);
  EXPECT_EQ(r->argmax[0], 1);
}

TEST(MaxPoolTest, BackwardRoutesGradToArgmax) {
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 4.0f;
  x[2] = 3.0f;
  x[3] = 2.0f;
  Result<MaxPoolResult> fwd = MaxPool2dForward(x, 2, 2);
  ASSERT_TRUE(fwd.ok());
  Tensor dy({1, 1, 1, 1}, 2.5f);
  Result<Tensor> dx = MaxPool2dBackward(fwd->argmax, x.shape(), dy);
  ASSERT_TRUE(dx.ok());
  EXPECT_FLOAT_EQ((*dx)[1], 2.5f);
  EXPECT_FLOAT_EQ((*dx)[0], 0.0f);
  EXPECT_FLOAT_EQ((*dx)[2], 0.0f);
}

TEST(ReluTest, ForwardAndBackward) {
  Tensor x = Tensor::FromVector({-1.0f, 0.0f, 2.0f});
  Tensor y = ReluForward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor dy = Tensor::FromVector({5.0f, 5.0f, 5.0f});
  Tensor dx = ReluBackward(x, dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 0.0f);  // gradient zero at x == 0
  EXPECT_FLOAT_EQ(dx[2], 5.0f);
}

TEST(LinearTest, KnownAffineMap) {
  Tensor x({1, 2});
  x[0] = 1.0f;
  x[1] = 2.0f;
  Tensor w({2, 2});  // [[1, 2], [3, 4]]
  w[0] = 1.0f;
  w[1] = 2.0f;
  w[2] = 3.0f;
  w[3] = 4.0f;
  Tensor b = Tensor::FromVector({0.5f, -0.5f});
  Result<Tensor> y = LinearForward(x, w, b);
  ASSERT_TRUE(y.ok());
  EXPECT_FLOAT_EQ(y->At2(0, 0), 5.5f);   // 1*1+2*2+0.5
  EXPECT_FLOAT_EQ(y->At2(0, 1), 10.5f);  // 1*3+2*4-0.5
}

TEST(LinearTest, ShapeValidation) {
  EXPECT_FALSE(LinearForward(Tensor({2, 3}), Tensor({4, 5}), Tensor({4})).ok());
  EXPECT_FALSE(LinearForward(Tensor({2, 3}), Tensor({4, 3}), Tensor({5})).ok());
}

TEST(SoftmaxTest, RowsSumToOneAndOrderPreserved) {
  Tensor logits({2, 3});
  logits.At2(0, 0) = 1.0f;
  logits.At2(0, 1) = 2.0f;
  logits.At2(0, 2) = 3.0f;
  logits.At2(1, 0) = 100.0f;  // large values must not overflow
  logits.At2(1, 1) = 100.0f;
  logits.At2(1, 2) = 100.0f;
  Result<Tensor> p = SoftmaxForward(logits);
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < 2; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 3; ++j) total += p->At2(i, j);
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
  EXPECT_GT(p->At2(0, 2), p->At2(0, 1));
  EXPECT_NEAR(p->At2(1, 0), 1.0f / 3.0f, 1e-6f);
}

TEST(SoftmaxCrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits({1, 2});
  logits.At2(0, 0) = 20.0f;
  logits.At2(0, 1) = -20.0f;
  Tensor target({1, 2});
  target.At2(0, 0) = 1.0f;
  Result<SoftmaxCrossEntropyResult> r = SoftmaxCrossEntropy(logits, target);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->loss, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, UniformTargetLoss) {
  Tensor logits({1, 2}, 0.0f);
  Tensor target({1, 2}, 0.5f);
  Result<SoftmaxCrossEntropyResult> r = SoftmaxCrossEntropy(logits, target);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->loss, std::log(2.0), 1e-6);
  // Gradient is zero at the optimum for soft targets.
  EXPECT_NEAR(r->dlogits.At2(0, 0), 0.0f, 1e-7f);
}

TEST(SoftmaxCrossEntropyTest, GradientIsProbMinusTarget) {
  Tensor logits({1, 3});
  logits.At2(0, 0) = 0.3f;
  logits.At2(0, 1) = -0.2f;
  logits.At2(0, 2) = 1.0f;
  Tensor target({1, 3});
  target.At2(0, 1) = 1.0f;
  Result<SoftmaxCrossEntropyResult> r = SoftmaxCrossEntropy(logits, target);
  ASSERT_TRUE(r.ok());
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(r->dlogits.At2(0, j),
                r->probs.At2(0, j) - target.At2(0, j), 1e-6f);
  }
}

TEST(GlobalMaxPoolTest, PerChannelMaximum) {
  Tensor x({1, 2, 2, 2});
  for (int i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  Result<Tensor> y = GlobalMaxPool(x);
  ASSERT_TRUE(y.ok());
  EXPECT_FLOAT_EQ(y->At2(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y->At2(0, 1), 7.0f);
}

}  // namespace
}  // namespace goggles
