#include <memory>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "nn/vgg.h"

namespace goggles::nn {
namespace {

TEST(LayersTest, Conv2DOutputShape) {
  Rng rng(1);
  Conv2D conv(3, 8, 3, 1, 1, &rng);
  Result<Tensor> y = conv.Forward(Tensor({2, 3, 16, 16}));
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (std::vector<int64_t>{2, 8, 16, 16}));
  EXPECT_EQ(conv.Params().size(), 2u);
}

TEST(LayersTest, MaxPoolHalvesSpatialDims) {
  MaxPool2D pool(2, 2);
  Result<Tensor> y = pool.Forward(Tensor({1, 4, 8, 8}, 1.0f));
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (std::vector<int64_t>{1, 4, 4, 4}));
}

TEST(LayersTest, FlattenRoundTrip) {
  Flatten flatten;
  Result<Tensor> y = flatten.Forward(Tensor({2, 3, 4, 5}));
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (std::vector<int64_t>{2, 60}));
  Result<Tensor> back = flatten.Backward(Tensor({2, 60}));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shape(), (std::vector<int64_t>{2, 3, 4, 5}));
}

TEST(LayersTest, LinearShapes) {
  Rng rng(2);
  Linear linear(10, 4, &rng);
  EXPECT_EQ(linear.in_features(), 10);
  EXPECT_EQ(linear.out_features(), 4);
  Result<Tensor> y = linear.Forward(Tensor({3, 10}));
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (std::vector<int64_t>{3, 4}));
}

TEST(LayersTest, ZeroGradClearsGradients) {
  Rng rng(3);
  Linear linear(4, 2, &rng);
  Result<Tensor> y = linear.Forward(Tensor({1, 4}, 1.0f));
  ASSERT_TRUE(y.ok());
  Result<Tensor> dx = linear.Backward(Tensor({1, 2}, 1.0f));
  ASSERT_TRUE(dx.ok());
  EXPECT_GT(linear.Params()[0]->grad.MaxAbs(), 0.0f);
  linear.ZeroGrad();
  EXPECT_FLOAT_EQ(linear.Params()[0]->grad.MaxAbs(), 0.0f);
}

Sequential MakeTinyNet(uint64_t seed) {
  Rng rng(seed);
  Sequential net;
  net.Add(std::make_unique<Linear>(2, 16, &rng));
  net.Add(std::make_unique<ReLU>());
  net.Add(std::make_unique<Linear>(16, 2, &rng));
  return net;
}

TEST(SequentialTest, ForwardBackwardShapes) {
  Sequential net = MakeTinyNet(4);
  EXPECT_EQ(net.num_layers(), 3);
  EXPECT_EQ(net.NumParameters(), 2 * 16 + 16 + 16 * 2 + 2);
  Result<Tensor> y = net.Forward(Tensor({5, 2}));
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (std::vector<int64_t>{5, 2}));
  Result<Tensor> dx = net.Backward(Tensor({5, 2}, 1.0f));
  ASSERT_TRUE(dx.ok());
  EXPECT_EQ(dx->shape(), (std::vector<int64_t>{5, 2}));
}

TEST(SequentialTest, ForwardWithTapsCapturesIntermediates) {
  Sequential net = MakeTinyNet(5);
  std::vector<Tensor> taps;
  Result<Tensor> y = net.ForwardWithTaps(Tensor({3, 2}), {0, 1}, &taps);
  ASSERT_TRUE(y.ok());
  ASSERT_EQ(taps.size(), 2u);
  EXPECT_EQ(taps[0].shape(), (std::vector<int64_t>{3, 16}));
  EXPECT_EQ(taps[1].shape(), (std::vector<int64_t>{3, 16}));
}

TEST(SequentialTest, ForwardWithTapsRejectsBadIndices) {
  Sequential net = MakeTinyNet(6);
  std::vector<Tensor> taps;
  EXPECT_FALSE(net.ForwardWithTaps(Tensor({1, 2}), {7}, &taps).ok());
}

TEST(SequentialTest, ForwardUpToStopsEarly) {
  Sequential net = MakeTinyNet(7);
  Result<Tensor> y = net.ForwardUpTo(Tensor({2, 2}), 0);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (std::vector<int64_t>{2, 16}));
  EXPECT_FALSE(net.ForwardUpTo(Tensor({2, 2}), 99).ok());
}

/// A linearly-separable 2-D two-class problem.
void MakeBlobs(int n, Tensor* x, std::vector<int>* labels, uint64_t seed) {
  Rng rng(seed);
  *x = Tensor({n, 2});
  labels->resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    (*labels)[static_cast<size_t>(i)] = label;
    const float cx = label == 0 ? -2.0f : 2.0f;
    x->At2(i, 0) = cx + static_cast<float>(rng.Gaussian() * 0.5);
    x->At2(i, 1) = static_cast<float>(rng.Gaussian() * 0.5);
  }
}

TEST(TrainerTest, LearnsSeparableBlobs) {
  Tensor x;
  std::vector<int> labels;
  MakeBlobs(64, &x, &labels, 8);
  Sequential net = MakeTinyNet(9);
  TrainerConfig config;
  config.epochs = 30;
  config.learning_rate = 5e-2f;
  config.optimizer = TrainerConfig::OptimizerKind::kSgd;
  Trainer trainer(&net, config);
  Result<double> loss = trainer.Fit(x, labels, 2);
  ASSERT_TRUE(loss.ok());
  Result<double> acc = trainer.Evaluate(x, labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(TrainerTest, AdamAlsoLearns) {
  Tensor x;
  std::vector<int> labels;
  MakeBlobs(64, &x, &labels, 10);
  Sequential net = MakeTinyNet(11);
  TrainerConfig config;
  config.epochs = 60;
  config.learning_rate = 1e-2f;
  config.optimizer = TrainerConfig::OptimizerKind::kAdam;
  Trainer trainer(&net, config);
  ASSERT_TRUE(trainer.Fit(x, labels, 2).ok());
  Result<double> acc = trainer.Evaluate(x, labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(TrainerTest, SoftLabelsReduceLoss) {
  Tensor x;
  std::vector<int> labels;
  MakeBlobs(32, &x, &labels, 12);
  Tensor soft = MakeOneHot(labels, 2);
  // Blur the labels: 0.8 / 0.2 (probabilistic labels, as GOGGLES emits).
  for (int64_t i = 0; i < soft.dim(0); ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      soft.At2(i, j) = soft.At2(i, j) * 0.6f + 0.2f;
    }
  }
  Sequential net = MakeTinyNet(13);
  TrainerConfig config;
  config.epochs = 1;
  Trainer trainer(&net, config);
  Result<double> first = trainer.FitSoft(x, soft);
  ASSERT_TRUE(first.ok());
  TrainerConfig longer = config;
  longer.epochs = 30;
  Sequential net2 = MakeTinyNet(13);
  Trainer trainer2(&net2, longer);
  Result<double> final_loss = trainer2.FitSoft(x, soft);
  ASSERT_TRUE(final_loss.ok());
  EXPECT_LT(*final_loss, *first);
}

TEST(TrainerTest, MakeOneHot) {
  Tensor t = MakeOneHot({1, 0, 2}, 3);
  EXPECT_FLOAT_EQ(t.At2(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(t.At2(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.At2(2, 2), 1.0f);
}

TEST(TrainerTest, GatherRows) {
  Tensor x({3, 2});
  for (int64_t i = 0; i < 6; ++i) x[i] = static_cast<float>(i);
  Tensor g = GatherRows(x, {2, 0});
  EXPECT_EQ(g.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_FLOAT_EQ(g.At2(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(g.At2(1, 1), 1.0f);
}

TEST(VggTest, BuilderShapesAndTaps) {
  VggMiniConfig config;
  config.image_size = 32;
  config.stage_channels = {4, 8, 16, 16, 16};
  Result<VggMini> model = BuildVggMini(config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->pool_layer_indices.size(), 5u);
  EXPECT_EQ(model->feature_dim, 16);  // 16 channels * 1 * 1

  std::vector<Tensor> taps;
  Result<Tensor> logits = model->net.ForwardWithTaps(
      Tensor({2, 3, 32, 32}), model->pool_layer_indices, &taps);
  ASSERT_TRUE(logits.ok());
  EXPECT_EQ(logits->shape(), (std::vector<int64_t>{2, 16}));
  ASSERT_EQ(taps.size(), 5u);
  EXPECT_EQ(taps[0].shape(), (std::vector<int64_t>{2, 4, 16, 16}));
  EXPECT_EQ(taps[4].shape(), (std::vector<int64_t>{2, 16, 1, 1}));
}

TEST(VggTest, RejectsTooSmallImages) {
  VggMiniConfig config;
  config.image_size = 8;  // cannot pool 5 times
  EXPECT_FALSE(BuildVggMini(config).ok());
}

TEST(VggTest, RejectsEmptyStages) {
  VggMiniConfig config;
  config.stage_channels = {};
  EXPECT_FALSE(BuildVggMini(config).ok());
}

TEST(SerializeTest, RoundTripPreservesParameters) {
  Sequential net = MakeTinyNet(20);
  const std::string path = ::testing::TempDir() + "/goggles_net.bin";
  ASSERT_TRUE(SaveParameters(&net, path).ok());

  Sequential other = MakeTinyNet(21);  // different init
  // Before loading, the nets differ.
  float diff = 0.0f;
  for (size_t p = 0; p < net.Params().size(); ++p) {
    Tensor delta = net.Params()[p]->value;
    ASSERT_TRUE(delta.Axpy(-1.0f, other.Params()[p]->value).ok());
    diff += delta.MaxAbs();
  }
  EXPECT_GT(diff, 0.0f);

  ASSERT_TRUE(LoadParameters(&other, path).ok());
  for (size_t p = 0; p < net.Params().size(); ++p) {
    Tensor delta = net.Params()[p]->value;
    ASSERT_TRUE(delta.Axpy(-1.0f, other.Params()[p]->value).ok());
    EXPECT_FLOAT_EQ(delta.MaxAbs(), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsArchitectureMismatch) {
  Sequential net = MakeTinyNet(22);
  const std::string path = ::testing::TempDir() + "/goggles_net2.bin";
  ASSERT_TRUE(SaveParameters(&net, path).ok());

  Rng rng(23);
  Sequential different;
  different.Add(std::make_unique<Linear>(3, 3, &rng));
  EXPECT_FALSE(LoadParameters(&different, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFails) {
  Sequential net = MakeTinyNet(24);
  EXPECT_FALSE(LoadParameters(&net, "/nonexistent/net.bin").ok());
}

TEST(OptimizerTest, SgdMomentumMovesParameters) {
  Rng rng(30);
  Linear linear(2, 2, &rng);
  Tensor before = linear.Params()[0]->value;
  linear.Params()[0]->grad.Fill(1.0f);
  Sgd sgd(0.1f, 0.9f);
  sgd.Step(linear.Params());
  Tensor delta = linear.Params()[0]->value;
  ASSERT_TRUE(delta.Axpy(-1.0f, before).ok());
  EXPECT_NEAR(delta.MaxAbs(), 0.1f, 1e-6f);
  // Second step with momentum moves farther.
  Tensor mid = linear.Params()[0]->value;
  sgd.Step(linear.Params());
  Tensor delta2 = linear.Params()[0]->value;
  ASSERT_TRUE(delta2.Axpy(-1.0f, mid).ok());
  EXPECT_NEAR(delta2.MaxAbs(), 0.19f, 1e-5f);
}

TEST(OptimizerTest, AdamStepSizeBounded) {
  Rng rng(31);
  Linear linear(2, 2, &rng);
  Tensor before = linear.Params()[0]->value;
  linear.Params()[0]->grad.Fill(100.0f);  // huge gradient
  Adam adam(1e-3f);
  adam.Step(linear.Params());
  Tensor delta = linear.Params()[0]->value;
  ASSERT_TRUE(delta.Axpy(-1.0f, before).ok());
  // Adam normalizes by the gradient magnitude: step ~ lr.
  EXPECT_LT(delta.MaxAbs(), 2e-3f);
}

}  // namespace
}  // namespace goggles::nn
