#include "goggles/affinity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/raster.h"
#include "nn/vgg.h"

namespace goggles {
namespace {

data::Image PatternImage(int variant) {
  data::Image img(3, 32, 32, 0.1f);
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 8, {1.0f, 0.2f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 8, 8, 24, 24, {0.2f, 1.0f, 0.2f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 16, 3, {0.2f, 0.2f, 1.0f});
      break;
  }
  return img;
}

std::shared_ptr<features::FeatureExtractor> MakeExtractor() {
  nn::VggMiniConfig config;
  config.stage_channels = {4, 8, 8, 8, 8};
  config.num_classes = 4;
  Result<nn::VggMini> model = nn::BuildVggMini(config);
  model.status().Abort("vgg");
  return std::make_shared<features::FeatureExtractor>(std::move(*model));
}

class AffinityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    extractor_ = MakeExtractor();
    for (int i = 0; i < 6; ++i) images_.push_back(PatternImage(i));
  }
  std::shared_ptr<features::FeatureExtractor> extractor_;
  std::vector<data::Image> images_;
};

TEST_F(AffinityTest, LibraryHasLayersTimesZFunctions) {
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 10);
  EXPECT_EQ(library.functions.size(), 50u);  // 5 layers x Z=10
  AffinityLibrary small = BuildPrototypeAffinityLibrary(extractor_, 3);
  EXPECT_EQ(small.functions.size(), 15u);
}

TEST_F(AffinityTest, RoundRobinOrderingSpansLayersFirst) {
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 2);
  // First 5 functions are z=0 of layers 1..5.
  EXPECT_EQ(library.functions[0]->name(), "proto[L1,z0]");
  EXPECT_EQ(library.functions[1]->name(), "proto[L2,z0]");
  EXPECT_EQ(library.functions[4]->name(), "proto[L5,z0]");
  EXPECT_EQ(library.functions[5]->name(), "proto[L1,z1]");
}

TEST_F(AffinityTest, ScoresAreBoundedCosines) {
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 4);
  for (auto& f : library.functions) {
    ASSERT_TRUE(f->Prepare(images_).ok());
  }
  for (auto& f : library.functions) {
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        const float s = f->Score(i, j);
        ASSERT_GE(s, -1.0f - 1e-5f);
        ASSERT_LE(s, 1.0f + 1e-5f);
      }
    }
  }
}

TEST_F(AffinityTest, SelfAffinityIsMaximal) {
  // Eq. 2 with i == j: the prototype of x_j exists among x_j's own position
  // vectors, so the max cosine is exactly 1.
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 4);
  for (auto& f : library.functions) {
    ASSERT_TRUE(f->Prepare(images_).ok());
  }
  for (auto& f : library.functions) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_NEAR(f->Score(i, i), 1.0f, 1e-4f);
    }
  }
}

TEST_F(AffinityTest, SameConceptScoresHigherThanDifferent) {
  // Images 0 and 3 share the circle concept; image 1 is a square.
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 10);
  for (auto& f : library.functions) {
    ASSERT_TRUE(f->Prepare(images_).ok());
  }
  double same = 0.0, diff = 0.0;
  for (auto& f : library.functions) {
    same += f->Score(0, 3);
    diff += f->Score(1, 3);
  }
  EXPECT_GT(same, diff);
}

TEST_F(AffinityTest, MatrixLayoutMatchesPaperSection22) {
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 2);
  std::vector<AffinityFunction*> fns = library.Pointers();
  for (auto* f : fns) ASSERT_TRUE(f->Prepare(images_).ok());
  const int n = static_cast<int>(images_.size());
  Result<Matrix> a = BuildAffinityMatrix(fns, n);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->rows(), n);
  EXPECT_EQ(a->cols(), static_cast<int64_t>(fns.size()) * n);
  // A[i, f*N + j] == f(x_i, x_j).
  for (size_t f = 0; f < fns.size(); ++f) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ASSERT_NEAR((*a)(i, static_cast<int64_t>(f) * n + j),
                    static_cast<double>(fns[f]->Score(i, j)), 1e-6);
      }
    }
  }
}

TEST_F(AffinityTest, PrepareIsIdempotent) {
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 2);
  ASSERT_TRUE(library.source->Prepare(images_).ok());
  const float before = library.source->Score(0, 0, 0, 1);
  const uint64_t fingerprint = library.source->fingerprint();
  ASSERT_TRUE(library.source->Prepare(images_).ok());
  EXPECT_FLOAT_EQ(library.source->Score(0, 0, 0, 1), before);
  EXPECT_EQ(library.source->fingerprint(), fingerprint);
}

// Regression test: Prepare() idempotence used to be keyed on image count
// only, so re-preparing with a *different* same-sized dataset silently
// reused the stale caches. It is now keyed on a content fingerprint.
TEST_F(AffinityTest, PrepareDetectsSameCountContentChange) {
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 2);
  ASSERT_TRUE(library.source->Prepare(images_).ok());
  const uint64_t first_fingerprint = library.source->fingerprint();

  // Same image count, shifted content: variant i+1 instead of i.
  std::vector<data::Image> shifted;
  for (size_t i = 0; i < images_.size(); ++i) {
    shifted.push_back(PatternImage(static_cast<int>(i) + 1));
  }
  ASSERT_TRUE(library.source->Prepare(shifted).ok());
  EXPECT_NE(library.source->fingerprint(), first_fingerprint);

  // The re-prepared source must agree with a source prepared on the
  // shifted dataset from scratch — not with the stale caches.
  AffinityLibrary fresh = BuildPrototypeAffinityLibrary(extractor_, 2);
  ASSERT_TRUE(fresh.source->Prepare(shifted).ok());
  for (int layer = 0; layer < library.source->num_layers(); ++layer) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        EXPECT_FLOAT_EQ(library.source->Score(layer, 1, i, j),
                        fresh.source->Score(layer, 1, i, j))
            << "stale cache at layer " << layer << " pair (" << i << ", "
            << j << ")";
      }
    }
  }
}

// The batched GEMM scorer must agree with the scalar ScoreQuery path —
// including for query images whose resolution (and hence filter-map
// area) differs from the pool's, which the scalar path always supported.
TEST_F(AffinityTest, BatchedQueryScoringMatchesScalarAcrossResolutions) {
  AffinityLibrary library = BuildPrototypeAffinityLibrary(extractor_, 3);
  ASSERT_TRUE(library.source->Prepare(images_).ok());
  const int num_functions = 15;  // 5 layers x z=3
  const int n = static_cast<int>(images_.size());

  for (int size : {32, 64}) {
    std::vector<data::Image> queries;
    for (int i = 0; i < 3; ++i) {
      data::Image img(3, size, size, 0.1f);
      data::DrawFilledCircle(&img, size / 2, size / 2, size / 4,
                             {0.9f, 0.3f, 0.2f + 0.1f * i});
      queries.push_back(img);
    }
    auto features = library.source->ExtractQueryFeatures(queries);
    ASSERT_TRUE(features.ok()) << features.status().ToString();
    auto rows = library.source->ScoreQueryRowsBatched(*features,
                                                      num_functions);
    ASSERT_TRUE(rows.ok()) << "query size " << size << ": "
                           << rows.status().ToString();
    ASSERT_EQ(rows->rows(), 3);
    ASSERT_EQ(rows->cols(), static_cast<int64_t>(num_functions) * n);
    for (int i = 0; i < 3; ++i) {
      for (int f = 0; f < num_functions; ++f) {
        const int layer = f % library.source->num_layers();
        const int z = f / library.source->num_layers();
        for (int j = 0; j < n; ++j) {
          ASSERT_NEAR(
              (*rows)(i, static_cast<int64_t>(f) * n + j),
              static_cast<double>(library.source->ScoreQuery(
                  layer, z, (*features)[static_cast<size_t>(i)], j)),
              1e-5)
              << "size " << size << " query " << i << " f " << f << " j "
              << j;
        }
      }
    }
  }
}

TEST(VectorCosineAffinityTest, MatchesCosine) {
  Matrix emb = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}, {-1, 0}});
  VectorCosineAffinity affinity("test", emb);
  std::vector<data::Image> dummy(4, data::Image(1, 2, 2));
  ASSERT_TRUE(affinity.Prepare(dummy).ok());
  EXPECT_NEAR(affinity.Score(0, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(affinity.Score(0, 1), 0.0f, 1e-6f);
  EXPECT_NEAR(affinity.Score(0, 2), 1.0f / std::sqrt(2.0f), 1e-6f);
  EXPECT_NEAR(affinity.Score(0, 3), -1.0f, 1e-6f);
  EXPECT_EQ(affinity.name(), "test");
}

TEST(VectorCosineAffinityTest, PrepareValidatesRowCount) {
  Matrix emb = Matrix::FromRows({{1, 0}});
  VectorCosineAffinity affinity("test", emb);
  std::vector<data::Image> two(2, data::Image(1, 2, 2));
  EXPECT_FALSE(affinity.Prepare(two).ok());
}

TEST(BuildAffinityMatrixTest, EmptyFunctionListRejected) {
  EXPECT_FALSE(BuildAffinityMatrix({}, 3).ok());
}

}  // namespace
}  // namespace goggles
