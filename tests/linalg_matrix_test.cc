#include "linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/kernels.h"

namespace goggles {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, IdentityAndZero) {
  Matrix id = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(Matrix::Zero(2, 2)(1, 1), 0.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, RowAndColCopies) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(MatrixTest, BlockExtractsSubmatrix) {
  Matrix m = Matrix::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}});
  Matrix b = m.Block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 11.0);
}

TEST(MatrixTest, ScaleAndAddInPlace) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  m.Scale(2.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
  Matrix other = Matrix::FromRows({{1, 1}, {1, 1}});
  ASSERT_TRUE(m.AddInPlace(other).ok());
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_FALSE(m.AddInPlace(Matrix(3, 3)).ok());
}

TEST(MatrixTest, Norms) {
  Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Result<Matrix> c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ((*c)(0, 0), 19.0);
  EXPECT_DOUBLE_EQ((*c)(0, 1), 22.0);
  EXPECT_DOUBLE_EQ((*c)(1, 0), 43.0);
  EXPECT_DOUBLE_EQ((*c)(1, 1), 50.0);
}

TEST(MatrixTest, MatMulShapeMismatchFails) {
  EXPECT_FALSE(MatMul(Matrix(2, 3), Matrix(2, 3)).ok());
}

TEST(MatrixTest, MatMulIdentityIsNoOp) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Result<Matrix> c = MatMul(a, Matrix::Identity(3));
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ((*c)(i, j), a(i, j));
  }
}

TEST(MatrixTest, GramTransposeMatchesExplicit) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix g = GramTranspose(a);  // A^T A, 2x2
  Result<Matrix> expected = MatMul(a.Transposed(), a);
  ASSERT_TRUE(expected.ok());
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_NEAR(g(i, j), (*expected)(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, MatVec) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Result<std::vector<double>> y = MatVec(a, {1.0, 1.0});
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ((*y)[0], 3.0);
  EXPECT_DOUBLE_EQ((*y)[1], 7.0);
  EXPECT_FALSE(MatVec(a, {1.0}).ok());
}

TEST(MatrixTest, ColumnMeansAndCenter) {
  Matrix a = Matrix::FromRows({{1, 10}, {3, 20}});
  std::vector<double> means = ColumnMeans(a);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 15.0);
  ASSERT_TRUE(CenterColumns(&a, means).ok());
  EXPECT_DOUBLE_EQ(a(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 5.0);
  std::vector<double> recentered = ColumnMeans(a);
  EXPECT_NEAR(recentered[0], 0.0, 1e-12);
  EXPECT_NEAR(recentered[1], 0.0, 1e-12);
}

TEST(KernelsTest, DotAndNorm) {
  const float a[4] = {1, 2, 3, 4};
  const float b[4] = {4, 3, 2, 1};
  EXPECT_FLOAT_EQ(DotF(a, b, 4), 20.0f);
  EXPECT_FLOAT_EQ(NormF(a, 4), std::sqrt(30.0f));
}

TEST(KernelsTest, CosineSimilarityBoundsAndIdentity) {
  const float a[3] = {1, 2, 3};
  const float opposite[3] = {-1, -2, -3};
  EXPECT_NEAR(CosineSimilarityF(a, a, 3), 1.0f, 1e-6f);
  EXPECT_NEAR(CosineSimilarityF(a, opposite, 3), -1.0f, 1e-6f);
  const float zero[3] = {0, 0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarityF(a, zero, 3), 0.0f);
}

TEST(KernelsTest, CosineMatchesEq3Definition) {
  // Paper Eq. 3: sim(a, b) = a.b / (||a|| ||b||).
  const float a[2] = {3, 0};
  const float b[2] = {3, 4};
  EXPECT_NEAR(CosineSimilarityF(a, b, 2), 9.0f / (3.0f * 5.0f), 1e-6f);
}

TEST(KernelsTest, SquaredDistanceAndNormalize) {
  float a[2] = {3, 4};
  const float b[2] = {0, 0};
  EXPECT_FLOAT_EQ(SquaredDistanceF(a, b, 2), 25.0f);
  NormalizeF(a, 2);
  EXPECT_NEAR(NormF(a, 2), 1.0f, 1e-6f);
  float zero[2] = {0, 0};
  NormalizeF(zero, 2);  // must not produce NaN
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

TEST(MatrixTest, ToStringDoesNotCrashOnLarge) {
  Matrix m(100, 100, 1.0);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("Matrix(100x100)"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace goggles
