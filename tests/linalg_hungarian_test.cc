#include "linalg/hungarian.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goggles {
namespace {

/// Exhaustive minimum assignment cost over all permutations (n <= 8).
double BruteForceMinCost(const Matrix& cost) {
  const int n = static_cast<int>(cost.rows());
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += cost(i, perm[static_cast<size_t>(i)]);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

bool IsPermutation(const std::vector<int>& assignment) {
  std::vector<int> sorted = assignment;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<int>(i)) return false;
  }
  return true;
}

TEST(HungarianTest, TrivialIdentity) {
  Matrix cost = Matrix::FromRows({{0, 1}, {1, 0}});
  Result<std::vector<int>> a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (std::vector<int>{0, 1}));
}

TEST(HungarianTest, ForcedSwap) {
  Matrix cost = Matrix::FromRows({{10, 1}, {1, 10}});
  Result<std::vector<int>> a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (std::vector<int>{1, 0}));
}

TEST(HungarianTest, KnownThreeByThree) {
  // Classic example: optimal cost is 5 (0->1, 1->0, 2->2 => 2+1... verify
  // against brute force instead of hand-computing).
  Matrix cost = Matrix::FromRows({{4, 2, 8}, {1, 3, 9}, {5, 6, 2}});
  Result<std::vector<int>> a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(IsPermutation(*a));
  EXPECT_DOUBLE_EQ(AssignmentObjective(cost, *a), BruteForceMinCost(cost));
}

TEST(HungarianTest, MaximizationPicksLargest) {
  Matrix reward = Matrix::FromRows({{9, 1}, {1, 9}});
  Result<std::vector<int>> a = SolveAssignmentMax(reward);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(AssignmentObjective(reward, *a), 18.0);
}

TEST(HungarianTest, NonSquareRejected) {
  EXPECT_FALSE(SolveAssignmentMin(Matrix(2, 3)).ok());
}

TEST(HungarianTest, EmptyMatrixIsEmptyAssignment) {
  Result<std::vector<int>> a = SolveAssignmentMin(Matrix(0, 0));
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->empty());
}

TEST(HungarianTest, NegativeCostsSupported) {
  Matrix cost = Matrix::FromRows({{-5, 2}, {3, -7}});
  Result<std::vector<int>> a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(AssignmentObjective(cost, *a), -12.0);
}

/// Property sweep: optimality vs brute force on random instances.
class HungarianRandomSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(HungarianRandomSweep, MatchesBruteForce) {
  const int n = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);
  Matrix cost(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) cost(i, j) = rng.Uniform(-10.0, 10.0);
  }
  Result<std::vector<int>> a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(IsPermutation(*a));
  EXPECT_NEAR(AssignmentObjective(cost, *a), BruteForceMinCost(cost), 1e-9)
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Random, HungarianRandomSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7),
                       ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL)));

TEST(HungarianTest, LargerInstanceRunsAndIsPermutation) {
  Rng rng(99);
  const int n = 43;  // GTSRB class count, the paper's largest K
  Matrix cost(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) cost(i, j) = rng.Uniform(0.0, 1.0);
  }
  Result<std::vector<int>> a = SolveAssignmentMin(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(IsPermutation(*a));
  // Sanity: solution at least as good as identity and one random swap.
  double identity_cost = 0.0;
  for (int i = 0; i < n; ++i) identity_cost += cost(i, i);
  EXPECT_LE(AssignmentObjective(cost, *a), identity_cost + 1e-12);
}

}  // namespace
}  // namespace goggles
