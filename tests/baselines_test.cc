#include <gtest/gtest.h>

#include "baselines/attribute_lfs.h"
#include "baselines/end_model.h"
#include "baselines/fsl.h"
#include "baselines/kmeans.h"
#include "baselines/label_model.h"
#include "baselines/spectral.h"
#include "data/birds.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace goggles::baselines {
namespace {

Matrix TwoBlobs(int n_per, int dim, double separation, Rng* rng,
                std::vector<int>* truth = nullptr) {
  Matrix x(2 * n_per, dim);
  for (int i = 0; i < 2 * n_per; ++i) {
    const int label = i < n_per ? 0 : 1;
    if (truth != nullptr) truth->push_back(label);
    for (int j = 0; j < dim; ++j) {
      x(i, j) = (label == 0 ? 0.0 : separation) + rng->Gaussian();
    }
  }
  return x;
}

TEST(KMeansTest, RecoversBlobs) {
  Rng rng(3);
  std::vector<int> truth;
  Matrix x = TwoBlobs(50, 3, 10.0, &rng, &truth);
  KMeansConfig config;
  config.num_clusters = 2;
  KMeans km(config);
  ASSERT_TRUE(km.Fit(x).ok());
  EXPECT_GE(eval::AccuracyWithOptimalMapping(km.labels(), truth, 2), 0.99);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(5);
  Matrix x = TwoBlobs(40, 3, 6.0, &rng);
  KMeansConfig c2;
  c2.num_clusters = 2;
  KMeansConfig c4;
  c4.num_clusters = 4;
  KMeans km2(c2), km4(c4);
  ASSERT_TRUE(km2.Fit(x).ok());
  ASSERT_TRUE(km4.Fit(x).ok());
  EXPECT_LE(km4.inertia(), km2.inertia() + 1e-9);
}

TEST(KMeansTest, PredictAssignsNearestCenter) {
  Rng rng(7);
  Matrix x = TwoBlobs(30, 2, 10.0, &rng);
  KMeansConfig config;
  config.num_clusters = 2;
  KMeans km(config);
  ASSERT_TRUE(km.Fit(x).ok());
  Matrix probe = Matrix::FromRows({{0.0, 0.0}, {10.0, 10.0}});
  Result<std::vector<int>> pred = km.Predict(probe);
  ASSERT_TRUE(pred.ok());
  EXPECT_NE((*pred)[0], (*pred)[1]);
}

TEST(KMeansTest, ValidatesInputs) {
  KMeansConfig config;
  config.num_clusters = 10;
  KMeans km(config);
  EXPECT_FALSE(km.Fit(Matrix(3, 2, 1.0)).ok());
  KMeans unfitted{KMeansConfig{}};
  EXPECT_FALSE(unfitted.Predict(Matrix(2, 2)).ok());
}

TEST(SpectralTest, RecoversBlockStructure) {
  // Block affinity matrix: same-class entries high, cross-class low.
  Rng rng(9);
  const int n = 40;
  std::vector<int> truth;
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) truth.push_back(i % 2);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double base = truth[static_cast<size_t>(i)] ==
                                  truth[static_cast<size_t>(j)]
                              ? 0.9
                              : 0.1;
      a(i, j) = base + rng.Uniform(-0.05, 0.05);
    }
  }
  SpectralConfig config;
  config.num_clusters = 2;
  Result<std::vector<int>> labels = SpectralCoclusterRows(a, config);
  ASSERT_TRUE(labels.ok());
  EXPECT_GE(eval::AccuracyWithOptimalMapping(*labels, truth, 2), 0.95);
}

TEST(SpectralTest, HandlesNegativeEntries) {
  Rng rng(11);
  Matrix a(10, 10);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Uniform(-1.0, 1.0);
  SpectralConfig config;
  Result<std::vector<int>> labels = SpectralCoclusterRows(a, config);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 10u);
}

TEST(SpectralTest, EmptyMatrixRejected) {
  EXPECT_FALSE(SpectralCoclusterRows(Matrix(), SpectralConfig{}).ok());
}

/// Builds votes where LF l has true accuracy acc[l] (abstaining at the
/// given rate), for a balanced binary ground truth.
Matrix SyntheticVotes(const std::vector<double>& accuracies,
                      const std::vector<int>& truth, double abstain_rate,
                      Rng* rng) {
  Matrix votes(static_cast<int64_t>(truth.size()),
               static_cast<int64_t>(accuracies.size()));
  for (size_t i = 0; i < truth.size(); ++i) {
    for (size_t l = 0; l < accuracies.size(); ++l) {
      if (rng->Bernoulli(abstain_rate)) {
        votes(static_cast<int64_t>(i), static_cast<int64_t>(l)) = kAbstainVote;
      } else if (rng->Bernoulli(accuracies[l])) {
        votes(static_cast<int64_t>(i), static_cast<int64_t>(l)) = truth[i];
      } else {
        votes(static_cast<int64_t>(i), static_cast<int64_t>(l)) = 1 - truth[i];
      }
    }
  }
  return votes;
}

TEST(LabelModelTest, RecoversLfAccuracyOrdering) {
  Rng rng(13);
  std::vector<int> truth;
  for (int i = 0; i < 400; ++i) truth.push_back(i % 2);
  const std::vector<double> true_acc = {0.9, 0.75, 0.6};
  Matrix votes = SyntheticVotes(true_acc, truth, 0.2, &rng);
  LabelModelConfig config;
  LabelModel model(config);
  ASSERT_TRUE(model.Fit(votes).ok());
  const auto& est = model.lf_accuracies();
  EXPECT_GT(est[0], est[1]);
  EXPECT_GT(est[1], est[2]);
  EXPECT_NEAR(est[0], 0.9, 0.08);
}

TEST(LabelModelTest, BeatsWorstLfAndMatchesMajorityOrBetter) {
  // Needs enough LFs for the consensus to identify per-LF quality; with
  // very few, mostly-random LFs, Dawid-Skene EM cannot beat majority vote
  // (a known property, not an implementation artifact).
  Rng rng(17);
  std::vector<int> truth;
  for (int i = 0; i < 300; ++i) truth.push_back(i % 2);
  Matrix votes =
      SyntheticVotes({0.9, 0.85, 0.75, 0.7, 0.65, 0.55}, truth, 0.1, &rng);
  LabelModelConfig config;
  LabelModel model(config);
  ASSERT_TRUE(model.Fit(votes).ok());
  Result<Matrix> proba = model.PredictProba(votes);
  ASSERT_TRUE(proba.ok());

  std::vector<int> em_pred, mv_pred;
  Matrix mv = MajorityVoteProba(votes, 2);
  for (int64_t i = 0; i < proba->rows(); ++i) {
    em_pred.push_back((*proba)(i, 1) > (*proba)(i, 0) ? 1 : 0);
    mv_pred.push_back(mv(i, 1) > mv(i, 0) ? 1 : 0);
  }
  const double em_acc = eval::Accuracy(em_pred, truth);
  const double mv_acc = eval::Accuracy(mv_pred, truth);
  EXPECT_GE(em_acc, mv_acc - 0.02);  // EM weighting >= majority vote
  EXPECT_GT(em_acc, 0.8);
}

TEST(LabelModelTest, AllAbstainGetsPriorRow) {
  Matrix votes(3, 2, static_cast<double>(kAbstainVote));
  votes(0, 0) = 1;  // one real vote so the fit is not degenerate
  LabelModelConfig config;
  LabelModel model(config);
  ASSERT_TRUE(model.Fit(votes).ok());
  Result<Matrix> proba = model.PredictProba(votes);
  ASSERT_TRUE(proba.ok());
  // Row 1 has only abstains -> posterior equals the prior.
  EXPECT_NEAR((*proba)(1, 0) + (*proba)(1, 1), 1.0, 1e-9);
}

TEST(LabelModelTest, ValidatesInputs) {
  LabelModel model{LabelModelConfig{}};
  EXPECT_FALSE(model.Fit(Matrix()).ok());
  EXPECT_FALSE(model.PredictProba(Matrix(2, 2)).ok());  // not fitted
}

TEST(MajorityVoteTest, CountsNonAbstainVotes) {
  Matrix votes = Matrix::FromRows({{0, 0, 1}, {-1, -1, -1}});
  Matrix proba = MajorityVoteProba(votes, 2);
  EXPECT_NEAR(proba(0, 0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(proba(1, 0), 0.5, 1e-9);  // uniform under total abstain
}

TEST(AttributeLfsTest, VotesFollowClassOwnership) {
  data::SynthBirdsConfig config;
  config.images_per_class = 4;
  config.annotation_noise = 0.0;
  data::LabeledDataset birds = data::GenerateSynthBirds(config);
  data::LabeledDataset pair = data::SelectClasses(birds, {0, 1});
  Result<Matrix> votes = BuildAttributeVotes(pair);
  ASSERT_TRUE(votes.ok());
  EXPECT_EQ(votes->rows(), pair.size());
  EXPECT_GT(votes->cols(), 0);
  // With noise-free annotations, every non-abstain vote is correct.
  for (int64_t i = 0; i < votes->rows(); ++i) {
    for (int64_t l = 0; l < votes->cols(); ++l) {
      const int vote = static_cast<int>((*votes)(i, l));
      if (vote == kAbstainVote) continue;
      ASSERT_EQ(vote, pair.labels[static_cast<size_t>(i)]);
    }
  }
}

TEST(AttributeLfsTest, RequiresAttributeMetadata) {
  data::LabeledDataset plain;
  plain.num_classes = 2;
  EXPECT_FALSE(BuildAttributeVotes(plain).ok());
}

TEST(FslTest, LearnsSeparableSupport) {
  Rng rng(19);
  std::vector<int> truth;
  Matrix features = TwoBlobs(30, 4, 6.0, &rng, &truth);
  // 5-shot support: rows 0-4 (class 0) and 30-34 (class 1).
  Matrix support(10, 4);
  std::vector<int> support_labels;
  for (int i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      support(i, j) = features(i, j);
      support(i + 5, j) = features(30 + i, j);
    }
  }
  for (int i = 0; i < 5; ++i) support_labels.push_back(0);
  for (int i = 0; i < 5; ++i) support_labels.push_back(1);

  FslConfig config;
  config.epochs = 400;
  config.learning_rate = 5e-3f;
  FewShotBaseline fsl(config);
  ASSERT_TRUE(fsl.Fit(support, support_labels, 2).ok());
  Result<double> acc = fsl.Evaluate(features, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(FslTest, ValidatesInputs) {
  FewShotBaseline fsl{FslConfig{}};
  EXPECT_FALSE(fsl.Fit(Matrix(), {}, 2).ok());
  EXPECT_FALSE(fsl.Predict(Matrix(2, 2)).ok());  // not fitted
  Matrix support = Matrix::FromRows({{0.0, 0.0}, {1.0, 1.0}});
  ASSERT_TRUE(fsl.Fit(support, {0, 1}, 2).ok());
  EXPECT_FALSE(fsl.Predict(Matrix(2, 5)).ok());  // dim mismatch
}

TEST(EndModelTest, LearnsFromHardLabels) {
  Rng rng(23);
  std::vector<int> truth;
  Matrix features = TwoBlobs(40, 4, 5.0, &rng, &truth);
  EndModelConfig config;
  config.epochs = 40;
  EndModel model(4, 2, config);
  ASSERT_TRUE(model.FitHard(features, truth).ok());
  Result<double> acc = model.Evaluate(features, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(EndModelTest, LearnsFromSoftLabels) {
  // The paper's core training mode: probabilistic labels (§2.1).
  Rng rng(29);
  std::vector<int> truth;
  Matrix features = TwoBlobs(40, 4, 5.0, &rng, &truth);
  Matrix soft(80, 2);
  for (int i = 0; i < 80; ++i) {
    soft(i, truth[static_cast<size_t>(i)]) = 0.85;
    soft(i, 1 - truth[static_cast<size_t>(i)]) = 0.15;
  }
  EndModelConfig config;
  config.epochs = 40;
  EndModel model(4, 2, config);
  ASSERT_TRUE(model.FitSoft(features, soft).ok());
  Result<double> acc = model.Evaluate(features, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.9);
}

TEST(EndModelTest, NoisierLabelsHurt) {
  // Labels at 55% purity should train a worse model than labels at 95%.
  Rng rng(31);
  std::vector<int> truth;
  Matrix features = TwoBlobs(60, 4, 3.0, &rng, &truth);
  auto train_with_purity = [&](double purity) {
    Matrix soft(120, 2);
    Rng flip_rng(77);
    for (int i = 0; i < 120; ++i) {
      int label = truth[static_cast<size_t>(i)];
      if (!flip_rng.Bernoulli(purity)) label = 1 - label;
      soft(i, label) = 1.0;
    }
    EndModelConfig config;
    config.epochs = 30;
    EndModel model(4, 2, config);
    model.FitSoft(features, soft).Abort("fit");
    return *model.Evaluate(features, truth);
  };
  EXPECT_GT(train_with_purity(0.95), train_with_purity(0.55));
}

TEST(EndModelTest, ValidatesInputs) {
  EndModel model(4, 2, EndModelConfig{});
  EXPECT_FALSE(model.FitSoft(Matrix(3, 4), Matrix(2, 2)).ok());
  EXPECT_FALSE(model.FitSoft(Matrix(3, 4), Matrix(3, 5)).ok());
  EXPECT_FALSE(model.FitHard(Matrix(3, 4), {0, 1}).ok());
}

TEST(MatrixToTensorTest, PreservesValues) {
  Matrix m = Matrix::FromRows({{1.5, -2.5}, {0.0, 4.0}});
  Tensor t = MatrixToTensor(m);
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_FLOAT_EQ(t.At2(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(t.At2(1, 1), 4.0f);
}

}  // namespace
}  // namespace goggles::baselines
