#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/tasks.h"

namespace goggles::eval {
namespace {

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {0, 1}), 0.0);  // size mismatch guarded
}

TEST(MetricsTest, AccuracyExcludingSkipsDevRows) {
  // Rows 0 and 2 excluded; of the rest, 1 of 2 correct.
  EXPECT_DOUBLE_EQ(
      AccuracyExcluding({0, 1, 1, 0}, {1, 1, 0, 1}, {0, 2}), 0.5);
  // Excluding everything yields 0.
  EXPECT_DOUBLE_EQ(AccuracyExcluding({0}, {0}, {0}), 0.0);
}

TEST(MetricsTest, ConfusionMatrixCounts) {
  Matrix confusion = ConfusionMatrix({0, 0, 1, 1}, {0, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(confusion(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(confusion(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(confusion(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(confusion(1, 0), 0.0);
}

TEST(MetricsTest, OptimalMappingFixesSwappedClusters) {
  // Clusters perfectly anti-aligned with labels.
  std::vector<int> clusters = {1, 1, 0, 0};
  std::vector<int> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(clusters, truth), 0.0);
  EXPECT_DOUBLE_EQ(AccuracyWithOptimalMapping(clusters, truth, 2), 1.0);
}

TEST(MetricsTest, OptimalMappingThreeClasses) {
  // Cyclic shift of 3 classes, one error.
  std::vector<int> clusters = {1, 1, 2, 2, 0, 1};
  std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(AccuracyWithOptimalMapping(clusters, truth, 3), 5.0 / 6.0,
              1e-12);
}

TEST(MetricsTest, OptimalMappingExcluding) {
  std::vector<int> clusters = {1, 1, 0, 0};
  std::vector<int> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(
      AccuracyWithOptimalMappingExcluding(clusters, truth, 2, {0}), 1.0);
}

TEST(MetricsTest, MeanAndStd) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(MetricsTest, AucPerfectAndRandom) {
  // Perfect separation -> AUC 1; inverted -> 0; ties -> 0.5.
  EXPECT_DOUBLE_EQ(AucRoc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(AucRoc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(AucRoc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(MetricsTest, AucHandlesDegenerateLabelSets) {
  EXPECT_DOUBLE_EQ(AucRoc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AucRoc({}, {}), 0.5);
}

TEST(MetricsTest, AucKnownMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won = (0.8>0.6, 0.8>0.2,
  // 0.4<0.6, 0.4>0.2) = 3 of 4.
  EXPECT_DOUBLE_EQ(AucRoc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(TasksTest, BinaryDatasetYieldsOneTask) {
  TaskSuiteConfig config;
  config.images_per_class = 12;
  Result<std::vector<LabelingTask>> tasks = MakeTasks("surface", config);
  ASSERT_TRUE(tasks.ok());
  ASSERT_EQ(tasks->size(), 1u);
  const LabelingTask& task = (*tasks)[0];
  EXPECT_EQ(task.num_classes, 2);
  EXPECT_GT(task.train.size(), 0);
  EXPECT_GT(task.test.size(), 0);
  EXPECT_EQ(task.dev_indices.size(), task.dev_labels.size());
  EXPECT_EQ(task.dev_indices.size(), 10u);  // 5 per class
}

TEST(TasksTest, MultiClassDatasetYieldsPairs) {
  TaskSuiteConfig config;
  config.images_per_class = 6;
  config.num_pairs = 4;
  Result<std::vector<LabelingTask>> tasks = MakeTasks("birds", config);
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(tasks->size(), 4u);
  for (const LabelingTask& task : *tasks) {
    EXPECT_EQ(task.num_classes, 2);
    EXPECT_TRUE(task.train.has_attributes());  // carried from the corpus
    // Dev labels match the train labels at those indices.
    for (size_t i = 0; i < task.dev_indices.size(); ++i) {
      EXPECT_EQ(task.dev_labels[i],
                task.train.labels[static_cast<size_t>(task.dev_indices[i])]);
    }
  }
}

TEST(TasksTest, TrainTestDisjointSizes) {
  TaskSuiteConfig config;
  config.images_per_class = 20;
  config.train_fraction = 0.6;
  Result<std::vector<LabelingTask>> tasks = MakeTasks("tbxray", config);
  ASSERT_TRUE(tasks.ok());
  const LabelingTask& task = (*tasks)[0];
  EXPECT_EQ(task.train.size(), 24);  // 12 per class
  EXPECT_EQ(task.test.size(), 16);
}

TEST(TasksTest, UnknownDatasetRejected) {
  EXPECT_FALSE(MakeTasks("cifar", TaskSuiteConfig{}).ok());
}

TEST(TasksTest, DeterministicForSeed) {
  TaskSuiteConfig config;
  config.images_per_class = 6;
  config.num_pairs = 2;
  config.seed = 42;
  Result<std::vector<LabelingTask>> a = MakeTasks("birds", config);
  Result<std::vector<LabelingTask>> b = MakeTasks("birds", config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].task_name, (*b)[i].task_name);
    EXPECT_EQ((*a)[i].dev_indices, (*b)[i].dev_indices);
    EXPECT_EQ((*a)[i].train.labels, (*b)[i].train.labels);
  }
}

}  // namespace
}  // namespace goggles::eval
