#include <set>

#include <gtest/gtest.h>

#include "data/birds.h"
#include "data/dataset.h"
#include "data/raster.h"
#include "data/registry.h"
#include "data/signs.h"
#include "data/surface.h"
#include "data/synthnet.h"
#include "data/xray.h"

namespace goggles::data {
namespace {

TEST(ImageTest, AccessorsAndStacking) {
  Image img(3, 4, 5, 0.25f);
  img.at(2, 3, 4) = 0.75f;
  EXPECT_FLOAT_EQ(img.at(2, 3, 4), 0.75f);
  EXPECT_EQ(img.NumElements(), 60);

  Tensor stacked = StackImages({img, img});
  EXPECT_EQ(stacked.shape(), (std::vector<int64_t>{2, 3, 4, 5}));
  EXPECT_FLOAT_EQ(stacked.At4(1, 2, 3, 4), 0.75f);

  Tensor subset = StackImageSubset({img, img, img}, {1});
  EXPECT_EQ(subset.dim(0), 1);
}

TEST(ImageTest, ClampAndMean) {
  Image img(1, 2, 2);
  img.pixels = {-1.0f, 0.5f, 2.0f, 1.0f};
  ClampImage(&img);
  EXPECT_FLOAT_EQ(img.pixels[0], 0.0f);
  EXPECT_FLOAT_EQ(img.pixels[2], 1.0f);
  EXPECT_NEAR(ImageMean(img), (0.0f + 0.5f + 1.0f + 1.0f) / 4.0f, 1e-6f);
}

TEST(RasterTest, FillAndGradient) {
  Image img(3, 8, 8);
  FillConstant(&img, {0.2f, 0.4f, 0.6f});
  EXPECT_FLOAT_EQ(img.at(1, 3, 3), 0.4f);
  FillVerticalGradient(&img, Color::Gray(0.0f), Color::Gray(1.0f));
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(0, 7, 0), 1.0f);
  EXPECT_GT(img.at(0, 5, 0), img.at(0, 2, 0));
}

TEST(RasterTest, ShapesDrawInsideBounds) {
  Image img(3, 16, 16, 0.0f);
  DrawFilledCircle(&img, 8, 8, 3, {1, 1, 1});
  EXPECT_GT(img.at(0, 8, 8), 0.9f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.0f);
  // Off-canvas drawing must not crash.
  DrawFilledCircle(&img, -10, -10, 5, {1, 1, 1});
  DrawFilledRect(&img, 12, 12, 30, 30, {1, 0, 0});
  EXPECT_FLOAT_EQ(img.at(0, 15, 15), 1.0f);
}

TEST(RasterTest, RingHasHole) {
  Image img(1, 32, 32, 0.0f);
  DrawRing(&img, 16, 16, 10, 2, Color::Gray(1.0f));
  EXPECT_GT(img.at(0, 16, 16 - 10 + 1), 0.9f);  // on the ring
  EXPECT_FLOAT_EQ(img.at(0, 16, 16), 0.0f);     // center empty
}

TEST(RasterTest, TrianglesPointCorrectWay) {
  Image up(1, 32, 32, 0.0f), down(1, 32, 32, 0.0f);
  DrawFilledTriangle(&up, 16, 16, 12, true, Color::Gray(1.0f));
  DrawFilledTriangle(&down, 16, 16, 12, false, Color::Gray(1.0f));
  // The up triangle is wider at the bottom; the down one at the top.
  auto row_mass = [](const Image& img, int y) {
    float acc = 0.0f;
    for (int x = 0; x < img.width; ++x) acc += img.at(0, y, x);
    return acc;
  };
  EXPECT_GT(row_mass(up, 20), row_mass(up, 12));
  EXPECT_GT(row_mass(down, 12), row_mass(down, 20));
}

TEST(RasterTest, BlurReducesVariance) {
  Rng rng(5);
  Image img(1, 32, 32, 0.5f);
  AddGaussianNoise(&img, 0.2f, &rng);
  auto variance = [](const Image& im) {
    double mean = 0.0;
    for (float v : im.pixels) mean += v;
    mean /= static_cast<double>(im.pixels.size());
    double var = 0.0;
    for (float v : im.pixels) var += (v - mean) * (v - mean);
    return var / static_cast<double>(im.pixels.size());
  };
  const double before = variance(img);
  GaussianBlur3x3(&img, 2);
  EXPECT_LT(variance(img), before * 0.6);
}

TEST(RasterTest, SoftBlobAdditive) {
  Image img(1, 32, 32, 0.2f);
  DrawSoftBlob(&img, 16, 16, 2.0f, 0.5f, Color::Gray(1.0f));
  EXPECT_NEAR(img.at(0, 16, 16), 0.7f, 0.02f);
  EXPECT_NEAR(img.at(0, 0, 0), 0.2f, 1e-4f);
}

TEST(SynthNetTest, GeneratesBalancedClasses) {
  SynthNetConfig config;
  config.images_per_class = 5;
  LabeledDataset ds = GenerateSynthNet(config);
  EXPECT_EQ(ds.num_classes, kSynthNetNumClasses);
  EXPECT_EQ(ds.size(), 16 * 5);
  std::vector<int> counts = ClassCounts(ds);
  for (int c : counts) EXPECT_EQ(c, 5);
  EXPECT_EQ(ds.class_names.size(), 16u);
}

TEST(SynthNetTest, DeterministicForSeed) {
  SynthNetConfig config;
  config.images_per_class = 3;
  LabeledDataset a = GenerateSynthNet(config);
  LabeledDataset b = GenerateSynthNet(config);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.images[static_cast<size_t>(i)].pixels,
              b.images[static_cast<size_t>(i)].pixels);
  }
}

TEST(SynthNetTest, PixelsInRange) {
  SynthNetConfig config;
  config.images_per_class = 2;
  LabeledDataset ds = GenerateSynthNet(config);
  for (const Image& img : ds.images) {
    for (float v : img.pixels) {
      ASSERT_GE(v, 0.0f);
      ASSERT_LE(v, 1.0f);
    }
  }
}

TEST(BirdsTest, AttributeMetadataConsistent) {
  SynthBirdsConfig config;
  config.images_per_class = 4;
  config.annotation_noise = 0.0;  // exact annotations for this test
  LabeledDataset ds = GenerateSynthBirds(config);
  EXPECT_EQ(ds.num_classes, 20);
  ASSERT_TRUE(ds.has_attributes());
  EXPECT_EQ(ds.class_attributes.rows(), 20);
  EXPECT_EQ(ds.class_attributes.cols(), kBirdNumAttributes);
  EXPECT_EQ(ds.image_attributes.rows(), ds.size());
  // Noise-free annotations equal the class attribute rows.
  for (int64_t i = 0; i < ds.size(); ++i) {
    const int label = ds.labels[static_cast<size_t>(i)];
    for (int64_t a = 0; a < kBirdNumAttributes; ++a) {
      ASSERT_DOUBLE_EQ(ds.image_attributes(i, a), ds.class_attributes(label, a));
    }
  }
}

TEST(BirdsTest, ClassPairsDifferInAtLeastThreeAttributes) {
  SynthBirdsConfig config;
  config.images_per_class = 1;
  LabeledDataset ds = GenerateSynthBirds(config);
  for (int a = 0; a < ds.num_classes; ++a) {
    for (int b = a + 1; b < ds.num_classes; ++b) {
      int dist = 0;
      for (int64_t col = 0; col < ds.class_attributes.cols(); ++col) {
        if (ds.class_attributes(a, col) != ds.class_attributes(b, col)) ++dist;
      }
      ASSERT_GE(dist, 3) << "classes " << a << "," << b;
    }
  }
}

TEST(BirdsTest, AnnotationNoiseFlipsSomeBits) {
  SynthBirdsConfig config;
  config.images_per_class = 30;
  config.annotation_noise = 0.2;
  LabeledDataset ds = GenerateSynthBirds(config);
  int64_t flips = 0, total = 0;
  for (int64_t i = 0; i < ds.size(); ++i) {
    const int label = ds.labels[static_cast<size_t>(i)];
    for (int64_t a = 0; a < kBirdNumAttributes; ++a) {
      ++total;
      if (ds.image_attributes(i, a) != ds.class_attributes(label, a)) ++flips;
    }
  }
  const double rate = static_cast<double>(flips) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.2, 0.05);
}

TEST(SignsTest, FortyThreeClasses) {
  SynthSignsConfig config;
  config.images_per_class = 2;
  LabeledDataset ds = GenerateSynthSigns(config);
  EXPECT_EQ(ds.num_classes, kSignsNumClasses);
  EXPECT_EQ(ds.size(), 43 * 2);
  EXPECT_FALSE(ds.has_attributes());
}

TEST(SurfaceTest, RoughClassHasHigherVariance) {
  SynthSurfaceConfig config;
  config.images_per_class = 20;
  LabeledDataset ds = GenerateSynthSurface(config);
  auto mean_local_variance = [&](int label) {
    double acc = 0.0;
    int count = 0;
    for (int64_t i = 0; i < ds.size(); ++i) {
      if (ds.labels[static_cast<size_t>(i)] != label) continue;
      const Image& img = ds.images[static_cast<size_t>(i)];
      // High-frequency energy: mean squared horizontal difference.
      double e = 0.0;
      for (int y = 0; y < img.height; ++y) {
        for (int x = 1; x < img.width; ++x) {
          const double d = img.at(0, y, x) - img.at(0, y, x - 1);
          e += d * d;
        }
      }
      acc += e;
      ++count;
    }
    return acc / count;
  };
  EXPECT_GT(mean_local_variance(1), 2.0 * mean_local_variance(0));
}

TEST(XrayTest, AbnormalTbImagesAreBrighterInLungs) {
  SynthXrayConfig config;
  config.images_per_class = 30;
  LabeledDataset ds = GenerateSynthTBXray(config);
  double mean_normal = 0.0, mean_abnormal = 0.0;
  int n0 = 0, n1 = 0;
  for (int64_t i = 0; i < ds.size(); ++i) {
    const float m = ImageMean(ds.images[static_cast<size_t>(i)]);
    if (ds.labels[static_cast<size_t>(i)] == 0) {
      mean_normal += m;
      ++n0;
    } else {
      mean_abnormal += m;
      ++n1;
    }
  }
  EXPECT_GT(mean_abnormal / n1, mean_normal / n0);
}

TEST(XrayTest, TwoCorporaDiffer) {
  SynthXrayConfig config;
  config.images_per_class = 2;
  LabeledDataset tb = GenerateSynthTBXray(config);
  LabeledDataset pn = GenerateSynthPNXray(config);
  EXPECT_EQ(tb.name, "tbxray");
  EXPECT_EQ(pn.name, "pnxray");
  EXPECT_NE(tb.images[3].pixels, pn.images[3].pixels);
}

TEST(DatasetTest, SelectClassesRelabelsAndFilters) {
  SynthBirdsConfig config;
  config.images_per_class = 3;
  LabeledDataset ds = GenerateSynthBirds(config);
  LabeledDataset pair = SelectClasses(ds, {7, 2});
  EXPECT_EQ(pair.num_classes, 2);
  EXPECT_EQ(pair.size(), 6);
  for (int label : pair.labels) {
    EXPECT_TRUE(label == 0 || label == 1);
  }
  // Class 0 of the pair is original class 7.
  for (int64_t a = 0; a < pair.class_attributes.cols(); ++a) {
    EXPECT_DOUBLE_EQ(pair.class_attributes(0, a), ds.class_attributes(7, a));
    EXPECT_DOUBLE_EQ(pair.class_attributes(1, a), ds.class_attributes(2, a));
  }
}

TEST(DatasetTest, StratifiedSplitDisjointAndComplete) {
  SynthSurfaceConfig config;
  config.images_per_class = 20;
  LabeledDataset ds = GenerateSynthSurface(config);
  Rng rng(3);
  TrainTestSplit split = StratifiedSplit(ds, 0.6, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
  std::vector<int> train_counts = ClassCounts(split.train);
  std::vector<int> test_counts = ClassCounts(split.test);
  EXPECT_EQ(train_counts[0], 12);
  EXPECT_EQ(test_counts[0], 8);
  EXPECT_EQ(train_counts[1], 12);
}

TEST(DatasetTest, SampleDevIndicesPerClass) {
  SynthSurfaceConfig config;
  config.images_per_class = 10;
  LabeledDataset ds = GenerateSynthSurface(config);
  Rng rng(5);
  std::vector<int> dev = SampleDevIndices(ds, 5, &rng);
  EXPECT_EQ(dev.size(), 10u);
  int per_class[2] = {0, 0};
  std::set<int> uniq(dev.begin(), dev.end());
  EXPECT_EQ(uniq.size(), dev.size());
  for (int idx : dev) ++per_class[ds.labels[static_cast<size_t>(idx)]];
  EXPECT_EQ(per_class[0], 5);
  EXPECT_EQ(per_class[1], 5);
}

TEST(DatasetTest, SampleClassPairsDistinct) {
  Rng rng(7);
  auto pairs = SampleClassPairs(20, 10, &rng);
  EXPECT_EQ(pairs.size(), 10u);
  std::set<std::pair<int, int>> uniq(pairs.begin(), pairs.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (const auto& [a, b] : pairs) {
    EXPECT_LT(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(b, 20);
  }
}

TEST(DatasetTest, SampleClassPairsCapped) {
  Rng rng(9);
  auto pairs = SampleClassPairs(3, 100, &rng);
  EXPECT_EQ(pairs.size(), 3u);  // only 3 distinct pairs exist
}

TEST(RegistryTest, KnownNamesGenerate) {
  for (const std::string& name : EvaluationDatasetNames()) {
    Result<LabeledDataset> ds = GenerateDataset(name, 2);
    ASSERT_TRUE(ds.ok()) << name;
    EXPECT_GT(ds->size(), 0) << name;
  }
  Result<LabeledDataset> synthnet = GenerateDataset("synthnet", 2);
  ASSERT_TRUE(synthnet.ok());
  EXPECT_EQ(synthnet->num_classes, 16);
}

TEST(RegistryTest, UnknownNameFails) {
  EXPECT_FALSE(GenerateDataset("imagenet", 2).ok());
}

}  // namespace
}  // namespace goggles::data
