#include "goggles/theory.h"

#include <cmath>

#include <gtest/gtest.h>

namespace goggles {
namespace {

TEST(TheoryTest, SingleDevExampleBinary) {
  // K=2, d=1: class maps correctly iff the one example lands in the right
  // cluster (ties impossible), so P = eta.
  EXPECT_NEAR(ClassMappingProbabilityLowerBound(2, 1, 0.8), 0.8, 1e-12);
  EXPECT_NEAR(ClassMappingProbabilityLowerBound(2, 1, 0.6), 0.6, 1e-12);
}

TEST(TheoryTest, TwoDevExamplesBinaryRequiresBothStrict) {
  // K=2, d=2: strict majority requires both in the correct cluster
  // (1-1 ties are excluded by the lower bound), so P_l = eta^2.
  EXPECT_NEAR(ClassMappingProbabilityLowerBound(2, 2, 0.8), 0.64, 1e-12);
}

TEST(TheoryTest, ThreeDevExamplesBinaryMajority) {
  // K=2, d=3: P(>=2 of 3 correct) = eta^3 + 3 eta^2 (1-eta).
  const double eta = 0.7;
  const double expected =
      std::pow(eta, 3) + 3 * eta * eta * (1 - eta);
  EXPECT_NEAR(ClassMappingProbabilityLowerBound(2, 3, eta), expected, 1e-12);
}

TEST(TheoryTest, PerfectAccuracyAlwaysMaps) {
  EXPECT_NEAR(ClassMappingProbabilityLowerBound(2, 1, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(ClassMappingProbabilityLowerBound(4, 3, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(CorrectMappingProbabilityLowerBound(4, 3, 1.0), 1.0, 1e-12);
}

TEST(TheoryTest, ZeroDevExamplesGivesZero) {
  EXPECT_DOUBLE_EQ(ClassMappingProbabilityLowerBound(2, 0, 0.9), 0.0);
}

TEST(TheoryTest, BoundsAreProbabilities) {
  for (int k = 2; k <= 5; ++k) {
    for (int d = 1; d <= 20; d += 3) {
      for (double eta : {0.3, 0.5, 0.8, 0.95}) {
        const double p = ClassMappingProbabilityLowerBound(k, d, eta);
        ASSERT_GE(p, 0.0);
        ASSERT_LE(p, 1.0);
      }
    }
  }
}

/// The DP must agree with exhaustive enumeration for small instances.
class TheoryBruteForceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(TheoryBruteForceSweep, DpMatchesBruteForce) {
  const int k = std::get<0>(GetParam());
  const int d = std::get<1>(GetParam());
  const double eta = std::get<2>(GetParam());
  const double dp = ClassMappingProbabilityLowerBound(k, d, eta);
  const double brute = ClassMappingProbabilityBruteForce(k, d, eta);
  EXPECT_NEAR(dp, brute, 1e-10) << "K=" << k << " d=" << d << " eta=" << eta;
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, TheoryBruteForceSweep,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 3, 5, 7),
                       ::testing::Values(0.5, 0.7, 0.9)));

TEST(TheoryTest, MonotoneInAccuracy) {
  for (int d : {3, 9, 15}) {
    double prev = 0.0;
    for (double eta = 0.5; eta <= 0.96; eta += 0.05) {
      const double p = CorrectMappingProbabilityLowerBound(2, d, eta);
      ASSERT_GE(p, prev - 1e-12) << "d=" << d << " eta=" << eta;
      prev = p;
    }
  }
}

TEST(TheoryTest, OddDevSizesMonotoneInD) {
  // Adding two more examples (keeping d odd, so no tie-loss artifacts)
  // never hurts the majority-vote bound.
  for (double eta : {0.6, 0.75, 0.9}) {
    double prev = 0.0;
    for (int d = 1; d <= 21; d += 2) {
      const double p = ClassMappingProbabilityLowerBound(2, d, eta);
      ASSERT_GE(p, prev - 1e-12) << "eta=" << eta << " d=" << d;
      prev = p;
    }
  }
}

TEST(TheoryTest, Figure7ShapeEta08K2) {
  // Figure 7 of the paper: at eta = 0.8, K = 2, around 20 dev examples
  // (10 per class) push the correct-mapping probability close to 1
  // (exact bound: P(Bin(10,.8) >= 6)^2 ~= 0.935).
  const double p10 = CorrectMappingProbabilityLowerBound(2, 10, 0.8);
  EXPECT_GT(p10, 0.9);
  const double p15 = CorrectMappingProbabilityLowerBound(2, 15, 0.8);
  EXPECT_GT(p15, 0.96);
  // And small dev sets are decidedly unreliable at eta = 0.6.
  const double p2 = CorrectMappingProbabilityLowerBound(2, 2, 0.6);
  EXPECT_LT(p2, 0.25);
}

TEST(TheoryTest, HigherAccuracyNeedsSmallerDevSet) {
  // The paper's observation: "datasets with higher accuracy converge at a
  // smaller development set size."
  const int d_low = RequiredDevPerClass(2, 0.7, 0.95);
  const int d_high = RequiredDevPerClass(2, 0.95, 0.95);
  ASSERT_GT(d_low, 0);
  ASSERT_GT(d_high, 0);
  EXPECT_LT(d_high, d_low);
}

TEST(TheoryTest, RequiredDevSizeUnreachableReturnsMinusOne) {
  // At eta = 0.5 (random labeler) the bound cannot reach 0.999 quickly.
  EXPECT_EQ(RequiredDevPerClass(2, 0.5, 0.999, /*max_d=*/10), -1);
}

TEST(TheoryTest, ErrorSpreadMakesPerClassMappingEasier) {
  // With more classes, the (1-eta) error mass spreads over K-1 wrong
  // clusters (rho = (1-eta)/(K-1)), so a strict majority in the correct
  // cluster becomes *easier* per class — the per-class bound increases
  // with K at fixed eta and d.
  const double p2 = ClassMappingProbabilityLowerBound(2, 9, 0.8);
  const double p4 = ClassMappingProbabilityLowerBound(4, 9, 0.8);
  EXPECT_GT(p4, p2);
}

}  // namespace
}  // namespace goggles
