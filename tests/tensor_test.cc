#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace goggles {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.NumElements(), 24);
  EXPECT_EQ(t.ShapeString(), "[2, 3, 4]");
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(Tensor().empty());
}

TEST(TensorTest, FillAndScale) {
  Tensor t({2, 2}, 3.0f);
  EXPECT_FLOAT_EQ(t[3], 3.0f);
  t.Scale(2.0f);
  EXPECT_FLOAT_EQ(t[0], 6.0f);
  t.Fill(-1.0f);
  EXPECT_FLOAT_EQ(t[2], -1.0f);
}

TEST(TensorTest, At4Indexing) {
  Tensor t({2, 3, 4, 5});
  t.At4(1, 2, 3, 4) = 7.0f;
  // Flat index: ((1*3+2)*4+3)*5+4 = 119
  EXPECT_FLOAT_EQ(t[119], 7.0f);
  const Tensor& ct = t;
  EXPECT_FLOAT_EQ(ct.At4(1, 2, 3, 4), 7.0f);
}

TEST(TensorTest, At2Indexing) {
  Tensor t({3, 4});
  t.At2(2, 1) = 5.0f;
  EXPECT_FLOAT_EQ(t[9], 5.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(t.Reshape({2, 3}).ok());
  EXPECT_FLOAT_EQ(t.At2(1, 0), 4.0f);
  EXPECT_FALSE(t.Reshape({5}).ok());
}

TEST(TensorTest, AddInPlaceAndAxpy) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({10, 20, 30});
  ASSERT_TRUE(a.AddInPlace(b).ok());
  EXPECT_FLOAT_EQ(a[2], 33.0f);
  ASSERT_TRUE(a.Axpy(0.5f, b).ok());
  EXPECT_FLOAT_EQ(a[0], 16.0f);
  Tensor wrong({2});
  EXPECT_FALSE(a.AddInPlace(wrong).ok());
  EXPECT_FALSE(a.Axpy(1.0f, wrong).ok());
}

TEST(TensorTest, SumAndMaxAbs) {
  Tensor t = Tensor::FromVector({-3, 1, 2});
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 3.0f);
  EXPECT_FLOAT_EQ(Tensor().MaxAbs(), 0.0f);
}

TEST(TensorTest, RandomNormalStatistics) {
  Rng rng(3);
  Tensor t = Tensor::RandomNormal({10000}, 2.0f, &rng);
  double mean = t.Sum() / 10000.0;
  EXPECT_NEAR(mean, 0.0, 0.1);
  double var = 0.0;
  for (int64_t i = 0; i < t.NumElements(); ++i) var += t[i] * t[i];
  EXPECT_NEAR(var / 10000.0, 4.0, 0.3);
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(5);
  Tensor t = Tensor::RandomUniform({1000}, -1.0f, 1.0f, &rng);
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    ASSERT_GE(t[i], -1.0f);
    ASSERT_LT(t[i], 1.0f);
  }
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(SameShape(Tensor({2, 3}), Tensor({2, 3})));
  EXPECT_FALSE(SameShape(Tensor({2, 3}), Tensor({3, 2})));
}

}  // namespace
}  // namespace goggles
