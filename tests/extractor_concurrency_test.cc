#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/raster.h"
#include "features/extractor.h"
#include "nn/vgg.h"

/// \file extractor_concurrency_test.cc
/// \brief Regression tests for lock-free concurrent feature extraction:
/// the global forward mutex is gone, so concurrent PoolFeatureMaps /
/// Logits calls on one shared extractor must run in parallel and produce
/// outputs bit-identical to a serial run. Runs under ASan/TSan in CI.

namespace goggles::features {
namespace {

data::Image PatternImage(int variant) {
  data::Image img(3, 32, 32, 0.05f * static_cast<float>(variant % 4));
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 6 + variant % 5, {0.9f, 0.3f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 6, 6, 26, 26, {0.2f, 0.8f, 0.3f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 14, 2, {0.3f, 0.2f, 0.9f});
      break;
  }
  return img;
}

std::shared_ptr<FeatureExtractor> MakeExtractor() {
  nn::VggMiniConfig config;
  config.stage_channels = {4, 8, 8, 8, 8};
  config.num_classes = 4;
  Result<nn::VggMini> model = nn::BuildVggMini(config);
  model.status().Abort("vgg");
  return std::make_shared<FeatureExtractor>(std::move(*model));
}

void ExpectMapsBitIdentical(const std::vector<std::vector<Tensor>>& a,
                            const std::vector<std::vector<Tensor>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t layer = 0; layer < a.size(); ++layer) {
    ASSERT_EQ(a[layer].size(), b[layer].size());
    for (size_t i = 0; i < a[layer].size(); ++i) {
      const Tensor& ta = a[layer][i];
      const Tensor& tb = b[layer][i];
      ASSERT_EQ(ta.shape(), tb.shape());
      ASSERT_EQ(std::memcmp(ta.data(), tb.data(),
                            static_cast<size_t>(ta.NumElements()) *
                                sizeof(float)),
                0)
          << "filter map diverges at layer " << layer << " image " << i;
    }
  }
}

TEST(ExtractorConcurrencyTest, ConcurrentPoolFeatureMapsBitIdentical) {
  auto extractor = MakeExtractor();
  std::vector<data::Image> images;
  for (int i = 0; i < 8; ++i) images.push_back(PatternImage(i));

  // Serial reference.
  auto serial = extractor->PoolFeatureMaps(images);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  // Two concurrent extractions on the one shared extractor (the serving
  // topology: N sessions, one backbone), repeated to give a data race a
  // chance to fire under TSan.
  constexpr int kRounds = 3;
  constexpr int kThreads = 4;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Result<std::vector<std::vector<Tensor>>>> results(
        kThreads, Status::Internal("unset"));
    {
      std::vector<std::thread> workers;
      workers.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
          results[static_cast<size_t>(t)] = extractor->PoolFeatureMaps(images);
        });
      }
      for (auto& w : workers) w.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(results[static_cast<size_t>(t)].ok())
          << results[static_cast<size_t>(t)].status().ToString();
      ExpectMapsBitIdentical(*serial, *results[static_cast<size_t>(t)]);
    }
  }
}

TEST(ExtractorConcurrencyTest, ConcurrentMixedEntryPointsBitIdentical) {
  auto extractor = MakeExtractor();
  std::vector<data::Image> images;
  for (int i = 0; i < 6; ++i) images.push_back(PatternImage(i));

  auto serial_logits = extractor->Logits(images);
  ASSERT_TRUE(serial_logits.ok());
  auto serial_feats = extractor->PenultimateFeatures(images);
  ASSERT_TRUE(serial_feats.ok());

  Result<Matrix> logits = Status::Internal("unset");
  Result<Matrix> feats = Status::Internal("unset");
  std::thread a([&] { logits = extractor->Logits(images); });
  std::thread b([&] { feats = extractor->PenultimateFeatures(images); });
  a.join();
  b.join();
  ASSERT_TRUE(logits.ok());
  ASSERT_TRUE(feats.ok());
  ASSERT_EQ(logits->rows(), serial_logits->rows());
  ASSERT_EQ(feats->rows(), serial_feats->rows());
  for (int64_t i = 0; i < logits->rows(); ++i) {
    for (int64_t j = 0; j < logits->cols(); ++j) {
      ASSERT_EQ((*logits)(i, j), (*serial_logits)(i, j));
    }
  }
  for (int64_t i = 0; i < feats->rows(); ++i) {
    for (int64_t j = 0; j < feats->cols(); ++j) {
      ASSERT_EQ((*feats)(i, j), (*serial_feats)(i, j));
    }
  }
}

// The const inference path must agree with the (stateful) training-path
// forward bit for bit — PoolFeatureMaps switched from the latter to the
// former when the forward mutex was removed.
TEST(ExtractorConcurrencyTest, InferencePathMatchesTrainingForward) {
  auto extractor = MakeExtractor();
  std::vector<data::Image> images;
  for (int i = 0; i < 4; ++i) images.push_back(PatternImage(i));
  Tensor batch = data::StackImageSubset(images, {0, 1, 2, 3});

  const nn::Sequential& net = extractor->backbone().net;
  auto inference = net.Forward(batch);  // const overload
  ASSERT_TRUE(inference.ok());
  auto training = extractor->mutable_backbone()->net.Forward(batch);
  ASSERT_TRUE(training.ok());
  ASSERT_EQ(inference->shape(), training->shape());
  ASSERT_EQ(std::memcmp(inference->data(), training->data(),
                        static_cast<size_t>(inference->NumElements()) *
                            sizeof(float)),
            0);
}

}  // namespace
}  // namespace goggles::features
