#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace goggles {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(7);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(13);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithMeanAndStd) {
  Rng rng(19);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(rng.Categorical(weights))];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(31);
  std::vector<int> p = rng.Permutation(50);
  std::vector<int> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  std::vector<int> s = rng.SampleWithoutReplacement(20, 8);
  EXPECT_EQ(s.size(), 8u);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(37);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 100).size(), 5u);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent(41);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(2);
  Rng f1_again = Rng(41).Fork(1);
  EXPECT_EQ(f1.NextUint64(), f1_again.NextUint64());
  // Streams with different ids diverge.
  Rng a = parent.Fork(10), b = parent.Fork(11);
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
  (void)f2;
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 2, 3, 5, 8, 13};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformBoundsHoldForAllSeeds) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST_P(RngSeedSweep, PermutationValidForAllSeeds) {
  Rng rng(GetParam());
  std::vector<int> p = rng.Permutation(17);
  std::set<int> uniq(p.begin(), p.end());
  EXPECT_EQ(uniq.size(), 17u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace goggles
