#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/lru.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/topk.h"

namespace goggles {
namespace {

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d", 42), "x=42");
  EXPECT_EQ(StrFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, ","), "a,bb,ccc");
  EXPECT_EQ(Split("a,bb,ccc", ','), parts);
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> with_empty = {"", "x", ""};
  EXPECT_EQ(Split(",x,", ','), with_empty);
}

TEST(StringUtilTest, TrimAndLower) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
}

TEST(StringUtilTest, FormatPercentAndDouble) {
  EXPECT_EQ(FormatPercent(0.9783), "97.83");
  EXPECT_EQ(FormatPercent(0.5, 1), "50.0");
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
}

TEST(TopkTest, ArgMaxArgMin) {
  std::vector<double> v = {3.0, 1.0, 4.0, 1.0, 5.0};
  EXPECT_EQ(ArgMax(v), 4);
  EXPECT_EQ(ArgMin(v), 1);
  EXPECT_EQ(ArgMax(std::vector<double>{}), -1);
}

TEST(TopkTest, ArgSortDescendingStable) {
  std::vector<int> v = {2, 7, 2, 9};
  std::vector<int> idx = ArgSortDescending(v);
  EXPECT_EQ(idx, (std::vector<int>{3, 1, 0, 2}));
}

TEST(TopkTest, ArgTopK) {
  std::vector<double> v = {0.1, 0.9, 0.5, 0.7};
  EXPECT_EQ(ArgTopK(v, 2), (std::vector<int>{1, 3}));
  EXPECT_EQ(ArgTopK(v, 10).size(), 4u);
}

TEST(ClockTest, MonotonicMicrosAdvances) {
  const int64_t before = MonotonicMicros();
  SleepForMicros(1000);
  const int64_t after = MonotonicMicros();
  EXPECT_GE(after - before, 1000);
  EXPECT_EQ(SteadyTimePointFromMicros(after).time_since_epoch().count(),
            std::chrono::steady_clock::time_point(
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::microseconds(after)))
                .time_since_epoch()
                .count());
}

TEST(LruCacheTest, GetTouchesRecency) {
  LruCache<std::string, int> cache(/*cost_budget=*/30);
  EXPECT_TRUE(cache.Put("a", 1, 10).empty());
  EXPECT_TRUE(cache.Put("b", 2, 10).empty());
  EXPECT_TRUE(cache.Put("c", 3, 10).empty());
  ASSERT_NE(cache.Get("a"), nullptr);  // a is now most recent; b is LRU

  auto evicted = cache.Put("d", 4, 10);  // 40 > 30: evict b
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, "b");
  EXPECT_EQ(evicted[0].value, 2);
  EXPECT_EQ(evicted[0].cost, 10u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.total_cost(), 30u);
  EXPECT_EQ(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("a"), nullptr);
}

TEST(LruCacheTest, CostBudgetEvictsMultiple) {
  LruCache<int, int> cache(/*cost_budget=*/100);
  cache.Put(1, 1, 40);
  cache.Put(2, 2, 40);
  auto evicted = cache.Put(3, 3, 90);  // needs both old entries gone
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0].key, 1);  // least recently used first
  EXPECT_EQ(evicted[1].key, 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, NewestEntrySurvivesEvenOverBudget) {
  LruCache<int, int> cache(/*cost_budget=*/10);
  cache.Put(1, 1, 5);
  auto evicted = cache.Put(2, 2, 1000);  // alone over budget: stays
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Peek(2), nullptr);
}

TEST(LruCacheTest, MaxEntriesCap) {
  LruCache<int, int> cache(/*cost_budget=*/0, /*max_entries=*/2);
  cache.Put(1, 1, 0);
  cache.Put(2, 2, 0);
  auto evicted = cache.Put(3, 3, 0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, 1);
}

TEST(LruCacheTest, PutReplacesAndEraseRemoves) {
  LruCache<std::string, int> cache(/*cost_budget=*/100);
  cache.Put("a", 1, 10);
  // Replacing hands the old value back (never destroyed in the cache).
  auto replaced = cache.Put("a", 2, 20);
  ASSERT_EQ(replaced.size(), 1u);
  EXPECT_EQ(replaced[0].value, 1);
  EXPECT_EQ(replaced[0].cost, 10u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.total_cost(), 20u);
  EXPECT_EQ(*cache.Peek("a"), 2);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));
  EXPECT_EQ(cache.total_cost(), 0u);

  // Peek must not touch recency: after peeking "x", it still evicts first.
  cache.Put("x", 1, 50);
  cache.Put("y", 2, 50);
  cache.Peek("x");
  auto evicted = cache.Put("z", 3, 50);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, "x");
}

TEST(LruCacheTest, ForEachIsMostRecentFirst) {
  LruCache<int, int> cache;
  cache.Put(1, 10, 1);
  cache.Put(2, 20, 1);
  cache.Get(1);
  std::vector<int> order;
  cache.ForEach([&](int key, int value, uint64_t cost) {
    order.push_back(key);
    EXPECT_EQ(value, key * 10);
    EXPECT_EQ(cost, 1u);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  const int64_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ParallelTest, EmptyRangeIsNoOp) {
  bool called = false;
  ParallelFor(5, 5, [&](int64_t) { called = true; });
  EXPECT_FALSE(called);
  ParallelFor(5, 3, [&](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, ChunkedCoversRange) {
  std::atomic<int64_t> total{0};
  ParallelForChunked(0, 1000, [&](int64_t lo, int64_t hi) {
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ParallelTest, SingleThreadFallback) {
  std::vector<int> hits(100, 0);
  ParallelFor(0, 100, [&](int64_t i) { hits[static_cast<size_t>(i)]++; },
              /*num_threads=*/1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

// Counts the peak number of concurrent workers inside a ParallelFor by
// holding each worker briefly at a rendezvous.
int PeakConcurrency(int num_threads_requested) {
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  ParallelForChunked(
      0, 64,
      [&](int64_t, int64_t) {
        const int now = live.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        live.fetch_sub(1);
      },
      num_threads_requested);
  return peak.load();
}

TEST(ParallelTest, KernelThreadBudgetCapsWorkerCount) {
  // The oversubscription regression the pipeline executor depends on: a
  // stage worker granted a budget of 2 must not let nested kernels fork
  // 8-wide, no matter what the call site requests.
  EXPECT_EQ(ScopedKernelThreadBudget::Current(), 0);
  {
    ScopedKernelThreadBudget budget(2);
    EXPECT_EQ(ScopedKernelThreadBudget::Current(), 2);
    EXPECT_LE(PeakConcurrency(/*num_threads_requested=*/8), 2);
    {
      // Nested budgets take the minimum — an inner grant cannot widen.
      ScopedKernelThreadBudget wider(6);
      EXPECT_EQ(ScopedKernelThreadBudget::Current(), 2);
      ScopedKernelThreadBudget narrower(1);
      EXPECT_EQ(ScopedKernelThreadBudget::Current(), 1);
      EXPECT_EQ(PeakConcurrency(8), 1);
    }
    EXPECT_EQ(ScopedKernelThreadBudget::Current(), 2);
  }
  EXPECT_EQ(ScopedKernelThreadBudget::Current(), 0);
}

TEST(ParallelTest, SerialKernelsMarkerBeatsTheBudget) {
  ScopedKernelThreadBudget budget(4);
  ScopedSerialKernels serial;
  EXPECT_EQ(PeakConcurrency(8), 1) << "depth marker must force serial";
}

TEST(ClockTest, FakeClockOnlyMovesWhenAdvanced) {
  FakeClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(-5);  // ignored
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(900);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.SetMicros(42);
  EXPECT_EQ(clock.NowMicros(), 42);
  EXPECT_EQ(SteadyClockInstance(), SteadyClockInstance());
}

TEST(ClockTest, FakeClockWaitUntilReleasesOnAdvanceOrPredicate) {
  FakeClock clock;
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  // Deadline release: the waiter must return (with pred false) once fake
  // time passes the deadline, regardless of notifications.
  std::thread deadline_waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_FALSE(clock.WaitUntil(cv, lock, 500, [&] { return ready; }));
  });
  clock.Advance(501);
  deadline_waiter.join();

  // Predicate release: an un-advanced clock holds the waiter until the
  // predicate flips.
  std::thread pred_waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_TRUE(
        clock.WaitUntil(cv, lock, 1 << 30, [&] { return ready; }));
  });
  {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
  }
  cv.notify_all();
  pred_waiter.join();
}

TEST(ParallelTest, BudgetedWorkersStillCoverTheWholeRange) {
  ScopedKernelThreadBudget budget(2);
  const int64_t n = 4099;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, [&](int64_t i) { hits[static_cast<size_t>(i)]++; }, 8);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(TableTest, RendersAlignedColumns) {
  AsciiTable table("Title");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddSeparator();
  table.AddRow({"bb", "22"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| bb    | 22    |"), std::string::npos);
}

TEST(TableTest, PadsShortRows) {
  AsciiTable table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"only"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter csv;
  csv.SetHeader({"x", "y"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"with\"quote", "multi\nline"});
  const std::string s = csv.ToString();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(CsvTest, WritesToFile) {
  CsvWriter csv;
  csv.SetHeader({"k", "v"});
  csv.AddRow({"a", "1"});
  const std::string path = ::testing::TempDir() + "/goggles_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvWriter csv;
  EXPECT_FALSE(csv.WriteToFile("/nonexistent_dir_xyz/out.csv").ok());
}

TEST(EnvTest, FallbacksWhenUnset) {
  EXPECT_EQ(GetEnvOr("GOGGLES_SURELY_UNSET_VAR", "dflt"), "dflt");
  EXPECT_EQ(GetEnvIntOr("GOGGLES_SURELY_UNSET_VAR", 5), 5);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_SURELY_UNSET_VAR", 2.5), 2.5);
}

TEST(EnvTest, ParsesSetValues) {
  ::setenv("GOGGLES_TEST_ENV_INT", "17", 1);
  ::setenv("GOGGLES_TEST_ENV_DBL", "0.25", 1);
  EXPECT_EQ(GetEnvIntOr("GOGGLES_TEST_ENV_INT", 0), 17);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 0.0), 0.25);
  ::unsetenv("GOGGLES_TEST_ENV_INT");
  ::unsetenv("GOGGLES_TEST_ENV_DBL");
}

TEST(EnvTest, RejectsTrailingGarbage) {
  ::setenv("GOGGLES_TEST_ENV_INT", "12abc", 1);
  ::setenv("GOGGLES_TEST_ENV_DBL", "0.25xyz", 1);
  EXPECT_EQ(GetEnvIntOr("GOGGLES_TEST_ENV_INT", 7), 7);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 1.5), 1.5);
  // Fully non-numeric and empty values also fall back.
  ::setenv("GOGGLES_TEST_ENV_INT", "paper", 1);
  EXPECT_EQ(GetEnvIntOr("GOGGLES_TEST_ENV_INT", 7), 7);
  ::setenv("GOGGLES_TEST_ENV_INT", "", 1);
  EXPECT_EQ(GetEnvIntOr("GOGGLES_TEST_ENV_INT", 7), 7);
  ::setenv("GOGGLES_TEST_ENV_DBL", "", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 1.5), 1.5);
  ::unsetenv("GOGGLES_TEST_ENV_INT");
  ::unsetenv("GOGGLES_TEST_ENV_DBL");
}

TEST(EnvTest, RejectsOutOfRangeValues) {
  ::setenv("GOGGLES_TEST_ENV_INT", "99999999999999999999999999", 1);
  EXPECT_EQ(GetEnvIntOr("GOGGLES_TEST_ENV_INT", -3), -3);
  ::setenv("GOGGLES_TEST_ENV_INT", "-99999999999999999999999999", 1);
  EXPECT_EQ(GetEnvIntOr("GOGGLES_TEST_ENV_INT", -3), -3);
  ::setenv("GOGGLES_TEST_ENV_DBL", "1e999", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 0.5), 0.5);
  ::setenv("GOGGLES_TEST_ENV_DBL", "-1e999", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 0.5), 0.5);
  // Underflow is not an error: the user meant "effectively zero".
  ::setenv("GOGGLES_TEST_ENV_DBL", "1e-400", 1);
  EXPECT_LT(std::abs(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 0.5)), 1e-300);
  // Literal non-finite values are rejected like overflow.
  ::setenv("GOGGLES_TEST_ENV_DBL", "nan", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 0.5), 0.5);
  ::setenv("GOGGLES_TEST_ENV_DBL", "-inf", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 0.5), 0.5);
  ::unsetenv("GOGGLES_TEST_ENV_INT");
  ::unsetenv("GOGGLES_TEST_ENV_DBL");
}

TEST(EnvTest, ParsesSignsAndWhitespacePrefix) {
  // strtoll/strtod accept leading whitespace and an explicit sign; the
  // full-string rule still applies after the number.
  ::setenv("GOGGLES_TEST_ENV_INT", "  -42", 1);
  EXPECT_EQ(GetEnvIntOr("GOGGLES_TEST_ENV_INT", 0), -42);
  ::setenv("GOGGLES_TEST_ENV_INT", "  -42 ", 1);
  EXPECT_EQ(GetEnvIntOr("GOGGLES_TEST_ENV_INT", 0), 0);
  ::setenv("GOGGLES_TEST_ENV_DBL", "+0.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr("GOGGLES_TEST_ENV_DBL", 0.0), 0.5);
  ::unsetenv("GOGGLES_TEST_ENV_INT");
  ::unsetenv("GOGGLES_TEST_ENV_DBL");
}

TEST(ParallelTest, NumThreadsEnvOverride) {
  ::setenv("GOGGLES_NUM_THREADS", "3", 1);
  EXPECT_EQ(ComputeDefaultNumThreads(), 3);
  // Malformed values fall back to hardware concurrency (>= 1).
  ::setenv("GOGGLES_NUM_THREADS", "4cores", 1);
  const int hw_fallback = ComputeDefaultNumThreads();
  ::unsetenv("GOGGLES_NUM_THREADS");
  EXPECT_EQ(hw_fallback, ComputeDefaultNumThreads());
  EXPECT_GE(hw_fallback, 1);
  // Zero or negative requests mean "auto": hardware concurrency again.
  ::setenv("GOGGLES_NUM_THREADS", "0", 1);
  EXPECT_EQ(ComputeDefaultNumThreads(), hw_fallback);
  ::setenv("GOGGLES_NUM_THREADS", "-8", 1);
  EXPECT_EQ(ComputeDefaultNumThreads(), hw_fallback);
  ::unsetenv("GOGGLES_NUM_THREADS");
  // The cached entry point agrees with the floor.
  EXPECT_GE(DefaultNumThreads(), 1);
}

TEST(TimerTest, MeasuresNonNegativeTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace goggles
