/// \file integration_test.cc
/// \brief End-to-end tests: pretrained backbone -> affinity coding ->
/// probabilistic labels, plus end-model training on those labels.
///
/// Uses a reduced backbone (fewer channels, fewer pretraining images) so
/// the whole suite stays fast; the full-scale configuration is exercised
/// by the bench binaries.

#include <gtest/gtest.h>

#include "eval/backbone.h"
#include "eval/metrics.h"
#include "eval/runners.h"
#include "eval/tasks.h"
#include "features/hog.h"
#include "goggles/pipeline.h"

namespace goggles {
namespace {

/// Shared across tests in this binary: train once, reuse.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BackboneOptions options;
    options.arch.stage_channels = {6, 12, 16, 24, 32};
    options.pretrain_images_per_class = 32;
    options.epochs = 8;
    options.cache_dir = ::testing::TempDir();
    double train_acc = 0.0;
    auto extractor = eval::GetPretrainedExtractor(options, &train_acc);
    extractor.status().Abort("integration backbone");
    context_ = new eval::RunnerContext();
    context_->extractor = *extractor;
    // Sanity: the backbone learned something on SynthNet (or was cached:
    // train_acc reported as -1).
    if (train_acc >= 0.0) {
      ASSERT_GT(train_acc, 0.2) << "backbone failed to train";
    }
  }

  static void TearDownTestSuite() {
    delete context_;
    context_ = nullptr;
  }

  static eval::LabelingTask MakeBirdsTask(int pairs_seed = 7) {
    eval::TaskSuiteConfig config;
    config.num_pairs = 1;
    config.images_per_class = 40;
    config.seed = static_cast<uint64_t>(pairs_seed);
    auto tasks = eval::MakeTasks("birds", config);
    tasks.status().Abort("tasks");
    return (*tasks)[0];
  }

  static eval::RunnerContext* context_;
};

eval::RunnerContext* IntegrationTest::context_ = nullptr;

TEST_F(IntegrationTest, GogglesLabelsEasyTaskAccurately) {
  eval::LabelingTask task = MakeBirdsTask();
  Result<double> acc = eval::RunGogglesLabeling(task, *context_);
  ASSERT_TRUE(acc.ok()) << acc.status();
  EXPECT_GT(*acc, 0.85) << "GOGGLES should label SynthBirds well";
}

TEST_F(IntegrationTest, SoftLabelsFeedEndModel) {
  eval::LabelingTask task = MakeBirdsTask();
  LabelingResult labeling;
  Result<double> acc = eval::RunGogglesLabeling(task, *context_, &labeling);
  ASSERT_TRUE(acc.ok());
  Result<double> end_acc =
      eval::RunEndModelFromSoftLabels(task, *context_, labeling.soft_labels);
  ASSERT_TRUE(end_acc.ok()) << end_acc.status();
  EXPECT_GT(*end_acc, 0.75);
}

TEST_F(IntegrationTest, SupervisedUpperBoundBeatsOrMatchesGoggles) {
  eval::LabelingTask task = MakeBirdsTask();
  LabelingResult labeling;
  Result<double> goggles_label_acc =
      eval::RunGogglesLabeling(task, *context_, &labeling);
  ASSERT_TRUE(goggles_label_acc.ok());
  Result<double> goggles_end =
      eval::RunEndModelFromSoftLabels(task, *context_, labeling.soft_labels);
  Result<double> upper = eval::RunSupervisedUpperBound(task, *context_);
  ASSERT_TRUE(goggles_end.ok());
  ASSERT_TRUE(upper.ok());
  EXPECT_GE(*upper, *goggles_end - 0.1);  // modest slack for small test nets
}

TEST_F(IntegrationTest, SnorkelRunsOnAttributeTask) {
  eval::LabelingTask task = MakeBirdsTask();
  Result<double> acc = eval::RunSnorkelLabeling(task);
  ASSERT_TRUE(acc.ok()) << acc.status();
  // Attribute LFs are near-perfect annotations: Snorkel does well.
  EXPECT_GT(*acc, 0.8);
}

TEST_F(IntegrationTest, SnubaRunsAndGogglesBeatsIt) {
  eval::LabelingTask task = MakeBirdsTask();
  Result<double> goggles = eval::RunGogglesLabeling(task, *context_);
  Result<double> snuba = eval::RunSnubaLabeling(task, *context_);
  ASSERT_TRUE(goggles.ok());
  ASSERT_TRUE(snuba.ok()) << snuba.status();
  // The paper's headline: GOGGLES outperforms Snuba (by 21% on average).
  EXPECT_GT(*goggles, *snuba - 0.05);
}

TEST_F(IntegrationTest, FslEndToEndRuns) {
  eval::LabelingTask task = MakeBirdsTask();
  Result<double> acc = eval::RunFslEndToEnd(task, *context_);
  ASSERT_TRUE(acc.ok()) << acc.status();
  EXPECT_GT(*acc, 0.5);
}

TEST_F(IntegrationTest, ClusteringBaselinesRun) {
  eval::LabelingTask task = MakeBirdsTask();
  for (auto kind : {eval::ClusteringKind::kKMeans, eval::ClusteringKind::kGmm,
                    eval::ClusteringKind::kSpectral}) {
    Result<double> acc = eval::RunClusteringBaseline(task, *context_, kind);
    ASSERT_TRUE(acc.ok()) << acc.status();
    EXPECT_GE(*acc, 0.45);  // optimal mapping => at least chance level
    EXPECT_LE(*acc, 1.0);
  }
}

TEST_F(IntegrationTest, RepresentationAblationsRun) {
  eval::LabelingTask task = MakeBirdsTask();
  Result<double> hog = eval::RunRepresentationAffinity(
      task, *context_, eval::RepresentationKind::kHog);
  Result<double> logits = eval::RunRepresentationAffinity(
      task, *context_, eval::RepresentationKind::kLogits);
  ASSERT_TRUE(hog.ok()) << hog.status();
  ASSERT_TRUE(logits.ok()) << logits.status();
  EXPECT_GT(*hog, 0.4);
  EXPECT_GT(*logits, 0.4);
}

TEST_F(IntegrationTest, MoreAffinityFunctionsHelpOrMatch) {
  // Figure 9's trend, coarsely: the full library is at least as good as a
  // 5-function prefix (allowing small-run variance slack).
  eval::LabelingTask task = MakeBirdsTask();
  eval::RunnerContext few = *context_;
  few.goggles.max_functions = 5;
  Result<double> acc_few = eval::RunGogglesLabeling(task, few);
  Result<double> acc_all = eval::RunGogglesLabeling(task, *context_);
  ASSERT_TRUE(acc_few.ok());
  ASSERT_TRUE(acc_all.ok());
  EXPECT_GE(*acc_all, *acc_few - 0.1);
}

TEST_F(IntegrationTest, CustomAffinityFunctionJoinsLibrary) {
  eval::LabelingTask task = MakeBirdsTask();
  GogglesPipeline pipeline(context_->extractor, context_->goggles);
  const int before = pipeline.num_functions();
  auto hog_matrix = features::ComputeHogMatrix(task.train.images);
  ASSERT_TRUE(hog_matrix.ok());
  pipeline.AddFunction(std::make_unique<VectorCosineAffinity>(
      "custom-hog", std::move(*hog_matrix)));
  EXPECT_EQ(pipeline.num_functions(), before + 1);
  Result<LabelingResult> result =
      pipeline.Label(task.train.images, task.dev_indices, task.dev_labels, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  const double acc = eval::AccuracyExcluding(
      result->hard_labels, task.train.labels, task.dev_indices);
  EXPECT_GT(acc, 0.8);
}

TEST_F(IntegrationTest, DevSetSizeZeroStillClusters) {
  // Without a development set GOGGLES still clusters; accuracy under the
  // *optimal* mapping stays high even though the cluster naming is
  // arbitrary (paper §4.3).
  eval::LabelingTask task = MakeBirdsTask();
  GogglesPipeline pipeline(context_->extractor, context_->goggles);
  Result<LabelingResult> result =
      pipeline.Label(task.train.images, {}, {}, 2);
  ASSERT_TRUE(result.ok());
  const double mapped_acc = eval::AccuracyWithOptimalMapping(
      result->hard_labels, task.train.labels, 2);
  EXPECT_GT(mapped_acc, 0.85);
}

}  // namespace
}  // namespace goggles
