#include "serve/artifact.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/raster.h"
#include "nn/vgg.h"
#include "serve/session.h"

/// Artifact round-trip and corruption handling: save -> load -> label
/// must be bit-identical to the in-memory session; corrupt files must
/// fail with a clean Status (never crash).

namespace goggles {
namespace {

data::Image PatternImage(int variant) {
  data::Image img(3, 32, 32, 0.1f);
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 6 + variant % 5, {1.0f, 0.2f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 6, 6, 26, 26, {0.2f, 1.0f, 0.2f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 14, 3, {0.2f, 0.2f, 1.0f});
      break;
  }
  return img;
}

std::shared_ptr<features::FeatureExtractor> MakeExtractor() {
  nn::VggMiniConfig config;
  config.stage_channels = {4, 8, 8, 8, 8};
  config.num_classes = 4;
  Result<nn::VggMini> model = nn::BuildVggMini(config);
  model.status().Abort("vgg");
  return std::make_shared<features::FeatureExtractor>(std::move(*model));
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One section of a serialized artifact, located by walking the headers:
/// `header` is the section-header offset, `crc` the offset of the u32
/// CRC field, `payload` the payload start, `end` one past the payload.
struct SectionSpan {
  size_t header = 0;
  size_t crc = 0;
  size_t payload = 0;
  size_t end = 0;
};

/// Walks the GGSA layout (12-byte file header, then per section
/// u32 tag | u64 payload_bytes | u32 crc | payload) and returns every
/// section's span — the corruption matrix derives its cut/flip points
/// from these instead of hard-coding offsets.
std::vector<SectionSpan> ParseSectionSpans(const std::string& bytes) {
  auto read_u32 = [&](size_t off) {
    uint32_t v = 0;
    std::memcpy(&v, bytes.data() + off, sizeof(v));
    return v;
  };
  auto read_u64 = [&](size_t off) {
    uint64_t v = 0;
    std::memcpy(&v, bytes.data() + off, sizeof(v));
    return v;
  };
  EXPECT_GE(bytes.size(), 12u);
  const uint32_t section_count = read_u32(8);
  std::vector<SectionSpan> spans;
  size_t off = 12;
  for (uint32_t s = 0; s < section_count; ++s) {
    SectionSpan span;
    span.header = off;
    const uint64_t payload_bytes = read_u64(off + 4);
    span.crc = off + 12;
    span.payload = off + 16;
    span.end = span.payload + static_cast<size_t>(payload_bytes);
    EXPECT_LE(span.end, bytes.size());
    spans.push_back(span);
    off = span.end;
  }
  EXPECT_EQ(off, bytes.size()) << "section walk must consume the file";
  return spans;
}

class ServeArtifactTest : public ::testing::Test {
 protected:
  // One shared fitted session for the whole suite: fitting is the
  // expensive part and every test only reads from it.
  static void SetUpTestSuite() {
    extractor_ = new std::shared_ptr<features::FeatureExtractor>(
        MakeExtractor());
    auto* pool = new std::vector<data::Image>();
    for (int i = 0; i < 12; ++i) pool->push_back(PatternImage(i));
    pool_ = pool;
    auto* held_out = new std::vector<data::Image>();
    for (int i = 12; i < 16; ++i) held_out->push_back(PatternImage(i));
    held_out_ = held_out;
    GogglesConfig config;
    config.top_z = 3;
    auto session = serve::Session::Fit(*extractor_, *pool_, {0, 1, 2, 3},
                                       {0, 1, 0, 1}, 2, config);
    session.status().Abort("Session::Fit");
    session_ = new serve::Session(std::move(*session));
  }

  static void TearDownTestSuite() {
    delete session_;
    delete held_out_;
    delete pool_;
    delete extractor_;
  }

  static std::shared_ptr<features::FeatureExtractor>* extractor_;
  static std::vector<data::Image>* pool_;
  static std::vector<data::Image>* held_out_;
  static serve::Session* session_;
};

std::shared_ptr<features::FeatureExtractor>* ServeArtifactTest::extractor_ =
    nullptr;
std::vector<data::Image>* ServeArtifactTest::pool_ = nullptr;
std::vector<data::Image>* ServeArtifactTest::held_out_ = nullptr;
serve::Session* ServeArtifactTest::session_ = nullptr;

TEST_F(ServeArtifactTest, RoundTripLabelsAreBitIdentical) {
  const std::string path = TempPath("roundtrip.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());

  auto loaded = serve::Session::Load(path, *extractor_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->pool_size(), session_->pool_size());
  EXPECT_EQ(loaded->num_classes(), session_->num_classes());
  EXPECT_EQ(loaded->num_functions(), session_->num_functions());
  EXPECT_EQ(loaded->pool_fingerprint(), session_->pool_fingerprint());

  // Held-out labeling through the loaded artifact must be bit-identical
  // to the in-memory session.
  auto from_memory = session_->LabelBatch(*held_out_);
  auto from_disk = loaded->LabelBatch(*held_out_);
  ASSERT_TRUE(from_memory.ok()) << from_memory.status();
  ASSERT_TRUE(from_disk.ok()) << from_disk.status();
  ASSERT_EQ(from_memory->soft_labels.rows(), from_disk->soft_labels.rows());
  ASSERT_EQ(from_memory->soft_labels.cols(), from_disk->soft_labels.cols());
  for (int64_t i = 0; i < from_memory->soft_labels.rows(); ++i) {
    for (int64_t k = 0; k < from_memory->soft_labels.cols(); ++k) {
      EXPECT_EQ(from_memory->soft_labels(i, k), from_disk->soft_labels(i, k))
          << "round-trip label mismatch at (" << i << ", " << k << ")";
    }
  }
  EXPECT_EQ(from_memory->hard_labels, from_disk->hard_labels);
  EXPECT_EQ(from_memory->ensemble_log_likelihood,
            from_disk->ensemble_log_likelihood);

  // The persisted pool labels survive too.
  const Matrix& pool_soft = loaded->pool_result().soft_labels;
  ASSERT_EQ(pool_soft.rows(), session_->pool_result().soft_labels.rows());
  for (int64_t i = 0; i < pool_soft.rows(); ++i) {
    for (int64_t k = 0; k < pool_soft.cols(); ++k) {
      EXPECT_EQ(pool_soft(i, k), session_->pool_result().soft_labels(i, k));
    }
  }
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, MissingFileIsNotFound) {
  auto loaded = serve::Session::Load(TempPath("does_not_exist.ggsa"),
                                     *extractor_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ServeArtifactTest, BadMagicIsRejected) {
  const std::string path = TempPath("bad_magic.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());
  std::string bytes = ReadFile(path);
  ASSERT_GE(bytes.size(), 4u);
  bytes[0] = 'X';
  WriteFile(path, bytes);
  auto loaded = serve::Artifact::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, TruncationIsDetectedAtEveryPrefix) {
  const std::string path = TempPath("truncated.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 64u);
  // A spread of truncation points: mid-header, mid-section-header,
  // mid-payload, and one byte short of complete.
  const size_t cuts[] = {0,  2,  4,  7,  11, 12, 20, bytes.size() / 4,
                         bytes.size() / 2, bytes.size() - 1};
  for (size_t cut : cuts) {
    WriteFile(path, bytes.substr(0, cut));
    auto loaded = serve::Artifact::Load(path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << cut << " not detected";
  }
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, BitFlipsFailTheCrc) {
  const std::string path = TempPath("bitflip.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());
  const std::string bytes = ReadFile(path);
  // Flip one payload byte in several spots past the 12-byte file header;
  // every section is CRC-checked, so each flip must be caught (either as
  // a CRC mismatch or as a now-invalid section header).
  for (size_t pos : {bytes.size() / 5, bytes.size() / 3, bytes.size() / 2,
                     bytes.size() - 9}) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x5A);
    WriteFile(path, corrupted);
    auto loaded = serve::Artifact::Load(path);
    EXPECT_FALSE(loaded.ok()) << "bit flip at " << pos << " not detected";
  }
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, CorruptedSectionSizeFieldIsRejectedCleanly) {
  const std::string path = TempPath("huge_size.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());
  std::string bytes = ReadFile(path);
  // First section header starts at offset 12 (magic + version + count):
  // u32 tag, then the u64 payload size at offsets 16..23. Blow it up;
  // the loader must reject it against the file length instead of
  // attempting a ~2^64-byte allocation.
  ASSERT_GT(bytes.size(), 24u);
  for (size_t i = 16; i < 24; ++i) bytes[i] = static_cast<char>(0xFF);
  WriteFile(path, bytes);
  auto loaded = serve::Artifact::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, OutOfRangeMappingsAreRejected) {
  // Craft artifacts whose cluster-to-class mappings are not permutations
  // of [0, K): Load must reject them (ApplyMapping would otherwise index
  // out of bounds).
  const std::string good_path = TempPath("good_mapping.ggsa");
  ASSERT_TRUE(session_->Save(good_path).ok());
  auto artifact = serve::Artifact::Load(good_path);
  ASSERT_TRUE(artifact.ok()) << artifact.status();

  const std::string bad_path = TempPath("bad_mapping.ggsa");
  {
    serve::Artifact tampered = *artifact;
    tampered.model.base_mappings[0] = {5, 7};  // out of [0, 2)
    ASSERT_TRUE(tampered.Save(bad_path).ok());
    EXPECT_FALSE(serve::Artifact::Load(bad_path).ok());
  }
  {
    serve::Artifact tampered = *artifact;
    tampered.model.ensemble_mapping = {1, 1};  // duplicate target
    ASSERT_TRUE(tampered.Save(bad_path).ok());
    EXPECT_FALSE(serve::Artifact::Load(bad_path).ok());
  }
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

TEST_F(ServeArtifactTest, UnsupportedVersionIsRejected) {
  const std::string path = TempPath("bad_version.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());
  std::string bytes = ReadFile(path);
  bytes[4] = 99;  // version field follows the 4-byte magic
  WriteFile(path, bytes);
  auto loaded = serve::Artifact::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, CorruptionMatrixTruncationAtEverySectionBoundary) {
  const std::string path = TempPath("matrix_trunc.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());
  const std::string bytes = ReadFile(path);
  const std::vector<SectionSpan> spans = ParseSectionSpans(bytes);
  ASSERT_GE(spans.size(), 4u);
  // Every structurally meaningful boundary: each section's header
  // start, its CRC field, its payload start, mid-payload, and one byte
  // short of its end. A cut at any of them must load as a clean error.
  for (size_t s = 0; s < spans.size(); ++s) {
    const SectionSpan& span = spans[s];
    for (size_t cut : {span.header, span.crc, span.payload,
                       span.payload + (span.end - span.payload) / 2,
                       span.end - 1}) {
      WriteFile(path, bytes.substr(0, cut));
      auto loaded = serve::Artifact::Load(path);
      ASSERT_FALSE(loaded.ok())
          << "truncation at byte " << cut << " (section " << s
          << ") not detected";
      EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
      EXPECT_STREQ(StatusCodeToErrorCode(loaded.status().code()), "io_error");
    }
  }
  // Cutting exactly at a section end leaves a well-formed prefix but a
  // wrong section count — still an error, never a partial artifact.
  for (size_t s = 0; s + 1 < spans.size(); ++s) {
    WriteFile(path, bytes.substr(0, spans[s].end));
    EXPECT_FALSE(serve::Artifact::Load(path).ok())
        << "missing sections after " << s << " not detected";
  }
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, CorruptionMatrixFlippedCrcByte) {
  const std::string path = TempPath("matrix_crc.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());
  const std::string bytes = ReadFile(path);
  // Flip one byte of every section's stored CRC: the payload is intact,
  // so only the checksum compare can catch it.
  for (size_t s = 0; s < ParseSectionSpans(bytes).size(); ++s) {
    const SectionSpan span = ParseSectionSpans(bytes)[s];
    std::string corrupted = bytes;
    corrupted[span.crc] = static_cast<char>(corrupted[span.crc] ^ 0x01);
    WriteFile(path, corrupted);
    auto loaded = serve::Artifact::Load(path);
    ASSERT_FALSE(loaded.ok()) << "flipped CRC of section " << s;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
    EXPECT_NE(loaded.status().message().find("CRC mismatch"),
              std::string::npos)
        << loaded.status();
  }
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, CorruptionMatrixTrailingBytesAreRejected) {
  const std::string path = TempPath("matrix_trailing.ggsa");
  ASSERT_TRUE(session_->Save(path).ok());
  const std::string bytes = ReadFile(path);
  for (size_t extra : {size_t{1}, size_t{16}, size_t{4096}}) {
    WriteFile(path, bytes + std::string(extra, '\x7f'));
    auto loaded = serve::Artifact::Load(path);
    ASSERT_FALSE(loaded.ok()) << extra << " trailing bytes not detected";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  }
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, CorruptionMatrixZeroByteFile) {
  const std::string path = TempPath("matrix_empty.ggsa");
  WriteFile(path, "");
  auto loaded = serve::Artifact::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(ServeArtifactTest, SaveAtomicRoundTripsAndLeavesNoTemp) {
  const std::string dir = TempPath("atomic_dir");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/atomic.ggsa";
  ASSERT_TRUE(session_->SaveAtomic(path).ok());

  // Byte-identical to a plain Save, and no staging temp left behind.
  const std::string direct = TempPath("atomic_direct.ggsa");
  ASSERT_TRUE(session_->Save(direct).ok());
  EXPECT_EQ(ReadFile(path), ReadFile(direct));
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_FALSE(
        serve::IsArtifactTempFilename(entry.path().filename().string()))
        << "stray temp: " << entry.path();
  }

  auto loaded = serve::Session::Load(path, *extractor_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->pool_fingerprint(), session_->pool_fingerprint());

  // SaveAtomic over an existing artifact replaces it whole.
  ASSERT_TRUE(session_->SaveAtomic(path).ok());
  EXPECT_TRUE(serve::Session::Load(path, *extractor_).ok());

  std::remove(direct.c_str());
  std::filesystem::remove_all(dir);
}

TEST_F(ServeArtifactTest, TempFilenameGrammar) {
  const std::string temp = serve::ArtifactTempPath("/x/task.ggsa");
  EXPECT_TRUE(serve::IsArtifactTempFilename(
      std::filesystem::path(temp).filename().string()));
  EXPECT_TRUE(serve::IsArtifactTempFilename("task.ggsa.tmp-1234"));
  EXPECT_FALSE(serve::IsArtifactTempFilename("task.ggsa"));
  EXPECT_FALSE(serve::IsArtifactTempFilename("task.ggsa.tmp-"));
  EXPECT_FALSE(serve::IsArtifactTempFilename("task.ggsa.tmp-12x4"));
  EXPECT_FALSE(serve::IsArtifactTempFilename("tmp-1234"));
}

TEST_F(ServeArtifactTest, SavingAnUnfittedSessionIsRejected) {
  serve::Session unfitted;
  EXPECT_FALSE(unfitted.Save(TempPath("unfitted.ggsa")).ok());
  serve::Artifact empty;
  EXPECT_FALSE(empty.Save(TempPath("empty.ggsa")).ok());
}

}  // namespace
}  // namespace goggles
