#include "util/pipeline.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/raster.h"
#include "nn/vgg.h"
#include "serve/service.h"
#include "util/spsc_queue.h"

/// The staged serving flowgraph: the SPSC queue primitive, the pipeline
/// executor (flow, batching, drain, backpressure, stats), and the
/// Service-level guarantees — pipelined responses bit-identical to the
/// serial path at multiple stage/thread configurations, reject-mode
/// admission control answering (not hanging), and the `stats` op's
/// pipeline section.

namespace goggles {
namespace {

// ---- SpscQueue ------------------------------------------------------------

TEST(SpscQueueTest, FifoWithWraparound) {
  SpscQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  // Several full fill/drain cycles exercise index wrap past capacity.
  int next_push = 0;
  int next_pop = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 4; ++i) {
      int v = next_push++;
      EXPECT_TRUE(queue.TryPush(v));
    }
    int overflow = 999;
    EXPECT_FALSE(queue.TryPush(overflow)) << "push into a full queue";
    EXPECT_EQ(overflow, 999) << "failed push must leave the item intact";
    for (int i = 0; i < 4; ++i) {
      int out = -1;
      ASSERT_TRUE(queue.TryPop(&out));
      EXPECT_EQ(out, next_pop++);
    }
    int empty_out = -1;
    EXPECT_FALSE(queue.TryPop(&empty_out)) << "pop from an empty queue";
  }
}

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscQueue<int>(65).capacity(), 128u);
}

TEST(SpscQueueTest, CloseIsALatchThatStillDrains) {
  SpscQueue<int> queue(4);
  int v = 7;
  ASSERT_TRUE(queue.TryPush(v));
  EXPECT_FALSE(queue.closed());
  queue.Close();
  EXPECT_TRUE(queue.closed());
  int refused = 8;
  EXPECT_FALSE(queue.TryPush(refused)) << "push after Close";
  int out = -1;
  EXPECT_TRUE(queue.TryPop(&out)) << "queued items must drain after Close";
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.TryPop(&out));
  EXPECT_TRUE(queue.Empty());
}

TEST(SpscQueueTest, ConcurrentProducerConsumerPreservesOrder) {
  SpscQueue<int> queue(8);
  constexpr int kItems = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      int v = i;
      while (!queue.TryPush(v)) std::this_thread::yield();
    }
    queue.Close();
  });
  int expected = 0;
  int out = -1;
  while (true) {
    if (queue.TryPop(&out)) {
      ASSERT_EQ(out, expected) << "SPSC order violated";
      ++expected;
    } else if (queue.closed() && queue.Empty()) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

// ---- Pipeline executor ----------------------------------------------------

TEST(PipelineTest, EveryItemFlowsThroughEveryStageOnce) {
  Pipeline<int> pipe;
  pipe.AddStage({"add", 2, 4, 4},
                [](std::vector<int>& items) {
                  for (int& v : items) v += 1000;
                });
  pipe.AddStage({"double", 3, 4, 2},
                [](std::vector<int>& items) {
                  for (int& v : items) v *= 2;
                });
  pipe.AddStage({"sub", 2, 4, 1},
                [](std::vector<int>& items) {
                  for (int& v : items) v -= 1;
                });
  std::mutex mu;
  std::vector<int> out;
  pipe.Start([&](int&& v) {
    std::lock_guard<std::mutex> lock(mu);
    out.push_back(v);
  });
  constexpr int kItems = 500;
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(pipe.Submit(int(i), /*block=*/true));
  }
  pipe.Drain();
  ASSERT_EQ(out.size(), static_cast<size_t>(kItems));
  std::sort(out.begin(), out.end());
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], (i + 1000) * 2 - 1) << i;
  }
}

TEST(PipelineTest, MidStreamDrainFlushesEverything) {
  Pipeline<int> pipe;
  std::atomic<int> processed{0};
  pipe.AddStage({"slow", 2, 2, 3}, [&](std::vector<int>& items) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    processed.fetch_add(static_cast<int>(items.size()));
  });
  std::atomic<int> sunk{0};
  pipe.Start([&](int&&) { sunk.fetch_add(1); });
  constexpr int kItems = 50;
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(pipe.Submit(int(i), /*block=*/true));
  }
  // Drain immediately, mid-stream: every submitted item must still
  // reach the sink exactly once before Drain returns.
  pipe.Drain();
  EXPECT_EQ(processed.load(), kItems);
  EXPECT_EQ(sunk.load(), kItems);
}

TEST(PipelineTest, BatchingNeverExceedsMaxBatch) {
  Pipeline<int> pipe;
  std::atomic<int> oversized{0};
  std::atomic<int> batches{0};
  pipe.AddStage({"batched", 1, 16, 4}, [&](std::vector<int>& items) {
    batches.fetch_add(1);
    if (items.size() > 4) oversized.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  std::atomic<int> sunk{0};
  pipe.Start([&](int&&) { sunk.fetch_add(1); });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pipe.Submit(int(i), /*block=*/true));
  }
  pipe.Drain();
  EXPECT_EQ(sunk.load(), 100);
  EXPECT_EQ(oversized.load(), 0);
  EXPECT_GE(batches.load(), 25) << "max_batch=4 needs >= 100/4 calls";
}

TEST(PipelineTest, BatchWaitWindowReleasesAtEndOfStream) {
  // A 10-second gather window must NOT make Drain take 10 seconds: the
  // intake closing releases any parked partial batch immediately.
  Pipeline<int> pipe;
  std::atomic<int> batches{0};
  pipe.AddStage({"patient", 1, 16, 8, /*batch_wait_micros=*/10'000'000},
                [&](std::vector<int>&) { batches.fetch_add(1); });
  std::atomic<int> sunk{0};
  pipe.Start([&](int&&) { sunk.fetch_add(1); });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pipe.Submit(int(i), /*block=*/true));
  }
  const auto t0 = std::chrono::steady_clock::now();
  pipe.Drain();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(sunk.load(), 3);
  EXPECT_GE(batches.load(), 1);
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "end-of-stream must break the gather window, not wait it out";
}

TEST(PipelineTest, NonBlockingSubmitRejectsWhenFullThenRecovers) {
  Pipeline<int> pipe;
  std::atomic<bool> release{false};
  pipe.AddStage({"gate", 1, 2, 1}, [&](std::vector<int>&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  std::atomic<int> sunk{0};
  pipe.Start([&](int&&) { sunk.fetch_add(1); });

  // With the stage gated shut, non-blocking submits must start failing
  // once the (tiny) intake queue fills — quickly and cleanly, no hang.
  int accepted = 0;
  int attempts = 0;
  while (attempts < 1000) {
    ++attempts;
    if (pipe.Submit(int(attempts), /*block=*/false)) {
      ++accepted;
    } else {
      break;
    }
  }
  EXPECT_LT(attempts, 1000) << "Submit never reported backpressure";
  EXPECT_GE(accepted, 1);
  const auto stats = pipe.Stats();
  EXPECT_GE(stats[0].backpressured, 1u);

  release.store(true);  // reopen the gate; everything accepted must flush
  pipe.Drain();
  EXPECT_EQ(sunk.load(), accepted);
}

TEST(PipelineTest, StatsCountItemsBatchesAndDepth) {
  Pipeline<int> pipe;
  pipe.AddStage({"a", 2, 8, 2}, [](std::vector<int>&) {});
  pipe.AddStage({"b", 1, 8, 1}, [](std::vector<int>&) {});
  pipe.Start([](int&&) {});
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pipe.Submit(int(i), /*block=*/true));
  }
  pipe.Drain();
  const auto stats = pipe.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[1].name, "b");
  for (const auto& s : stats) {
    EXPECT_EQ(s.items, 64u);
    EXPECT_GE(s.batches, 1u);
    EXPECT_LE(s.batches, s.items);
    EXPECT_EQ(s.queue_depth, 0u) << "drained pipeline still holds items";
  }
  EXPECT_EQ(stats[0].num_threads, 2);
  EXPECT_EQ(stats[0].queue_capacity, 8u);
}

TEST(PipelineTest, StageWorkersRunUnderTheKernelBudget) {
  Pipeline<int> pipe;
  std::atomic<int> observed{-1};
  pipe.AddStage({"check", 2, 4, 1}, [&](std::vector<int>&) {
    observed.store(ScopedKernelThreadBudget::Current());
  });
  pipe.Start([](int&&) {});
  ASSERT_TRUE(pipe.Submit(1, /*block=*/true));
  pipe.Drain();
  EXPECT_GE(pipe.KernelBudget(), 1);
  EXPECT_EQ(observed.load(), pipe.KernelBudget())
      << "stage worker did not install the executor's kernel budget";
}

// ---- PipelineOptions env / normalization ----------------------------------

TEST(PipelineOptionsTest, EnvOverlayUsesTheStrictParser) {
  setenv("GOGGLES_PIPELINE", "0", 1);
  setenv("GOGGLES_PIPELINE_EXTRACT_THREADS", "7", 1);
  setenv("GOGGLES_PIPELINE_MAX_BATCH", "junk", 1);   // malformed
  setenv("GOGGLES_PIPELINE_QUEUE", "128trailing", 1);  // trailing garbage
  setenv("GOGGLES_PIPELINE_BATCH_WAIT", "2500", 1);
  setenv("GOGGLES_PIPELINE_ADMISSION", "9", 1);
  setenv("GOGGLES_PIPELINE_REJECT", "1", 1);
  serve::PipelineOptions defaults;
  serve::PipelineOptions opts = serve::PipelineOptionsFromEnv(defaults);
  EXPECT_FALSE(opts.enabled);
  EXPECT_EQ(opts.extract_threads, 7);
  EXPECT_EQ(opts.max_batch, defaults.max_batch)
      << "malformed env value must fall back, not parse loosely";
  EXPECT_EQ(opts.queue_capacity, defaults.queue_capacity)
      << "trailing garbage must be rejected by the strict parser";
  EXPECT_EQ(opts.batch_wait_micros, 2500);
  EXPECT_EQ(opts.admission_capacity, 9);
  EXPECT_TRUE(opts.reject_on_full);

  // Malformed batch-wait falls back to the default like the others.
  setenv("GOGGLES_PIPELINE_BATCH_WAIT", "2.5ms", 1);
  serve::PipelineOptions opts2 = serve::PipelineOptionsFromEnv(defaults);
  EXPECT_EQ(opts2.batch_wait_micros, defaults.batch_wait_micros);

  unsetenv("GOGGLES_PIPELINE");
  unsetenv("GOGGLES_PIPELINE_EXTRACT_THREADS");
  unsetenv("GOGGLES_PIPELINE_MAX_BATCH");
  unsetenv("GOGGLES_PIPELINE_BATCH_WAIT");
  unsetenv("GOGGLES_PIPELINE_QUEUE");
  unsetenv("GOGGLES_PIPELINE_ADMISSION");
  unsetenv("GOGGLES_PIPELINE_REJECT");

  // With nothing set, the defaults pass through untouched.
  serve::PipelineOptions clean = serve::PipelineOptionsFromEnv(defaults);
  EXPECT_EQ(clean.enabled, defaults.enabled);
  EXPECT_EQ(clean.extract_threads, defaults.extract_threads);
  EXPECT_EQ(clean.max_batch, defaults.max_batch);
}

TEST(PipelineOptionsTest, ServiceNormalizationClampsAndDefaults) {
  serve::ServiceConfig config;
  config.queue_capacity = 32;
  config.pipeline.decode_threads = 0;
  config.pipeline.extract_threads = -4;
  config.pipeline.max_batch = 0;
  config.pipeline.batch_wait_micros = -500;
  config.pipeline.queue_capacity = -1;
  config.pipeline.admission_capacity = 0;  // "use queue_capacity"
  serve::Service service(std::shared_ptr<const serve::Session>(), config);
  const serve::PipelineOptions& p = service.config().pipeline;
  EXPECT_EQ(p.decode_threads, 1);
  EXPECT_EQ(p.extract_threads, 1);
  EXPECT_EQ(p.max_batch, 1);
  EXPECT_EQ(p.batch_wait_micros, 0) << "negative gather window clamps to 0";
  EXPECT_EQ(p.queue_capacity, 1);
  EXPECT_EQ(p.admission_capacity, 32);
}

// ---- Service: pipelined Run vs serial -------------------------------------

data::Image PatternImage(int variant) {
  data::Image img(3, 32, 32, 0.1f);
  switch (variant % 3) {
    case 0:
      data::DrawFilledCircle(&img, 16, 16, 6 + variant % 5, {1.0f, 0.2f, 0.2f});
      break;
    case 1:
      data::DrawFilledRect(&img, 6, 6, 26, 26, {0.2f, 1.0f, 0.2f});
      break;
    default:
      data::DrawCross(&img, 16, 16, 14, 3, {0.2f, 0.2f, 1.0f});
      break;
  }
  return img;
}

std::string ImageToJson(const data::Image& img) {
  serve::JsonValue obj = serve::JsonValue::MakeObject();
  obj.Set("channels", serve::JsonValue(img.channels));
  obj.Set("height", serve::JsonValue(img.height));
  obj.Set("width", serve::JsonValue(img.width));
  serve::JsonValue pixels = serve::JsonValue::MakeArray();
  for (float v : img.pixels) {
    pixels.Append(serve::JsonValue(static_cast<double>(v)));
  }
  obj.Set("pixels", std::move(pixels));
  return obj.Dump();
}

class ServePipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    nn::VggMiniConfig config;
    config.stage_channels = {4, 8, 8, 8, 8};
    config.num_classes = 4;
    Result<nn::VggMini> model = nn::BuildVggMini(config);
    model.status().Abort("vgg");
    auto extractor =
        std::make_shared<features::FeatureExtractor>(std::move(*model));
    std::vector<data::Image> pool;
    for (int i = 0; i < 12; ++i) pool.push_back(PatternImage(i));
    GogglesConfig goggles_config;
    goggles_config.top_z = 3;
    auto session = serve::Session::Fit(extractor, pool, {0, 1, 2, 3},
                                       {0, 1, 0, 1}, 2, goggles_config);
    session.status().Abort("Session::Fit");
    session_ = new std::shared_ptr<const serve::Session>(
        std::make_shared<const serve::Session>(std::move(*session)));
  }

  static void TearDownTestSuite() { delete session_; }

  /// A request mix that exercises every pipeline path: singleton labels,
  /// duplicate images (extract-stage dedup), a second shape (separate
  /// extraction group), label_batch and malformed/unknown requests
  /// (decode-stage short-circuit). No `stats` op — its counters are
  /// timing-dependent snapshots, everything else must be byte-stable.
  static std::string RequestStream() {
    std::ostringstream input;
    const data::Image dup = PatternImage(41);
    data::Image small(3, 16, 16, 0.4f);
    data::DrawFilledCircle(&small, 8, 8, 5, {1.0f, 0.3f, 0.2f});
    for (int i = 0; i < 6; ++i) {
      input << R"({"op":"label","image":)" << ImageToJson(PatternImage(40 + i))
            << "}\n";
      if (i == 2) {
        input << R"({"op":"label","image":)" << ImageToJson(dup) << "}\n"
              << R"({"op":"label","image":)" << ImageToJson(dup) << "}\n"
              << R"({"op":"label","image":)" << ImageToJson(small) << "}\n";
      }
    }
    input << R"({"op":"label_batch","images":[)" << ImageToJson(PatternImage(47))
          << "," << ImageToJson(PatternImage(48)) << "]}\n";
    input << "this is not json\n";
    input << R"({"op":"launder"})" << "\n";
    input << R"({"op":"label"})" << "\n";  // missing image
    return input.str();
  }

  static std::string RunWith(const serve::ServiceConfig& config) {
    serve::Service service(*session_, config);
    std::istringstream in(RequestStream());
    std::ostringstream out;
    Status status = service.Run(in, out);
    EXPECT_TRUE(status.ok()) << status;
    return out.str();
  }

  static std::shared_ptr<const serve::Session>* session_;
};

std::shared_ptr<const serve::Session>* ServePipelineTest::session_ = nullptr;

TEST_F(ServePipelineTest, PipelinedRunIsByteIdenticalToSerialAtAnyShape) {
  // Reference: the monolithic path, one worker — strictly serial.
  serve::ServiceConfig serial;
  serial.pipeline.enabled = false;
  serial.num_workers = 1;
  const std::string expected = RunWith(serial);
  ASSERT_FALSE(expected.empty());

  // Config 1: default stage shape (1/2/1/1 threads, batch 8).
  serve::ServiceConfig narrow;
  ASSERT_TRUE(narrow.pipeline.enabled) << "pipeline must be the default";

  // Config 2: wide stages, small queues + batches — maximal reordering
  // pressure and intra-stage concurrency.
  serve::ServiceConfig wide;
  wide.pipeline.decode_threads = 2;
  wide.pipeline.extract_threads = 3;
  wide.pipeline.infer_threads = 2;
  wide.pipeline.encode_threads = 2;
  wide.pipeline.queue_capacity = 2;
  wide.pipeline.max_batch = 3;

  // Config 3: tight admission (blocking backpressure on the reader).
  serve::ServiceConfig tight;
  tight.pipeline.admission_capacity = 2;

  EXPECT_EQ(RunWith(narrow), expected)
      << "default pipeline diverged from the serial path";
  EXPECT_EQ(RunWith(wide), expected)
      << "wide pipeline diverged from the serial path";
  EXPECT_EQ(RunWith(tight), expected)
      << "admission-throttled pipeline diverged from the serial path";
}

TEST_F(ServePipelineTest, RejectOnFullAnswersCleanlyInsteadOfHanging) {
  serve::ServiceConfig config;
  config.pipeline.admission_capacity = 1;
  config.pipeline.reject_on_full = true;
  serve::Service service(*session_, config);

  constexpr int kRequests = 8;
  std::ostringstream input;
  for (int i = 0; i < kRequests; ++i) {
    input << R"({"op":"label","image":)" << ImageToJson(PatternImage(60 + i))
          << "}\n";
  }
  std::istringstream in(input.str());
  std::ostringstream out;
  ASSERT_TRUE(service.Run(in, out).ok());

  // Every request gets exactly one response line, in input order; shed
  // requests answer with a clean error, never a hang or a dropped line.
  std::istringstream lines(out.str());
  std::string line;
  int total = 0;
  int rejected = 0;
  while (std::getline(lines, line)) {
    auto response = serve::JsonValue::Parse(line);
    ASSERT_TRUE(response.ok()) << line;
    if (!response->Find("ok")->bool_value()) {
      EXPECT_NE(response->Find("error")->str().find("overloaded"),
                std::string::npos)
          << line;
      ++rejected;
    }
    ++total;
  }
  EXPECT_EQ(total, kRequests);
  // The first request always admits (nothing in flight yet); with a cap
  // of one and a reader far faster than a labeling call, later arrivals
  // find the slot taken.
  EXPECT_GE(rejected, 1) << "admission control never engaged";
  EXPECT_LT(rejected, kRequests);
  EXPECT_EQ(service.requests_rejected(), static_cast<uint64_t>(rejected));
  EXPECT_EQ(service.requests_served(), static_cast<uint64_t>(kRequests));
}

TEST_F(ServePipelineTest, StatsOpReportsThePipelineSection) {
  serve::ServiceConfig config;
  config.pipeline.extract_threads = 2;
  serve::Service service(*session_, config);
  std::ostringstream input;
  input << R"({"op":"label","image":)" << ImageToJson(PatternImage(70))
        << "}\n"
        << R"({"op":"stats"})" << "\n";
  std::istringstream in(input.str());
  std::ostringstream out;
  ASSERT_TRUE(service.Run(in, out).ok());

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));  // label response
  ASSERT_TRUE(std::getline(lines, line));  // stats response
  auto stats = serve::JsonValue::Parse(line);
  ASSERT_TRUE(stats.ok()) << line;
  ASSERT_TRUE(stats->Find("ok")->bool_value());
  const serve::JsonValue* pipeline = stats->Find("pipeline");
  ASSERT_TRUE(pipeline != nullptr && pipeline->is_object())
      << "pipelined stats must carry a pipeline section: " << line;
  EXPECT_EQ(pipeline->Find("mode")->str(), "pipelined");
  const serve::JsonValue* admission = pipeline->Find("admission");
  ASSERT_TRUE(admission != nullptr && admission->is_object());
  EXPECT_DOUBLE_EQ(admission->Find("capacity")->number(), 64.0);
  EXPECT_EQ(admission->Find("policy")->str(), "block");
  EXPECT_DOUBLE_EQ(admission->Find("rejected")->number(), 0.0);
  const serve::JsonValue* stages = pipeline->Find("stages");
  ASSERT_TRUE(stages != nullptr && stages->is_array());
  ASSERT_EQ(stages->items().size(), 4u);
  const char* names[] = {"decode", "extract", "infer", "encode"};
  for (size_t s = 0; s < 4; ++s) {
    const serve::JsonValue& stage = stages->items()[s];
    EXPECT_EQ(stage.Find("name")->str(), names[s]);
    EXPECT_GE(stage.Find("threads")->number(), 1.0);
    EXPECT_GE(stage.Find("queue_capacity")->number(), 1.0);
    EXPECT_GE(stage.Find("items")->number(), 0.0);
  }
  // The decode stage has seen at least the label + this stats request.
  EXPECT_GE(stages->items()[0].Find("items")->number(), 2.0);

  // Outside a pipelined Run (direct dispatch), the section is absent —
  // the original response layout is preserved byte for byte.
  auto direct = serve::JsonValue::Parse(service.HandleLine(R"({"op":"stats"})"));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->Find("pipeline"), nullptr);
}

}  // namespace
}  // namespace goggles
