#include <gtest/gtest.h>

#include "data/raster.h"
#include "features/extractor.h"
#include "features/hog.h"
#include "features/prototypes.h"
#include "nn/vgg.h"

namespace goggles::features {
namespace {

/// The paper's Example 4, verbatim: a 3x2x2 filter map with channels
///   C1 = [1 0.5; 0.3 0.6], C2 = [0.1 0.7; 0.4 0.3], C3 = [0.2 0.9; 0.5 0.1]
/// Top-2 channels by max activation are C1 (1.0) then C3 (0.9); their
/// argmax positions are (0,0) and (0,1); the prototypes are the channel-
/// spanning vectors {1, 0.1, 0.2} and {0.5, 0.7, 0.9}.
Tensor Example4FilterMap() {
  Tensor fmap({3, 2, 2});
  // C1
  fmap[0] = 1.0f;
  fmap[1] = 0.5f;
  fmap[2] = 0.3f;
  fmap[3] = 0.6f;
  // C2
  fmap[4] = 0.1f;
  fmap[5] = 0.7f;
  fmap[6] = 0.4f;
  fmap[7] = 0.3f;
  // C3
  fmap[8] = 0.2f;
  fmap[9] = 0.9f;
  fmap[10] = 0.5f;
  fmap[11] = 0.1f;
  return fmap;
}

TEST(PrototypeTest, PaperExample4TopTwoPrototypes) {
  std::vector<Prototype> protos = ExtractTopZPrototypes(Example4FilterMap(), 2);
  ASSERT_EQ(protos.size(), 2u);

  EXPECT_EQ(protos[0].channel, 0);  // C1 selected first
  EXPECT_EQ(protos[0].h, 0);
  EXPECT_EQ(protos[0].w, 0);
  ASSERT_EQ(protos[0].vector.size(), 3u);
  EXPECT_FLOAT_EQ(protos[0].vector[0], 1.0f);
  EXPECT_FLOAT_EQ(protos[0].vector[1], 0.1f);
  EXPECT_FLOAT_EQ(protos[0].vector[2], 0.2f);

  EXPECT_EQ(protos[1].channel, 2);  // C3 selected second
  EXPECT_EQ(protos[1].h, 0);
  EXPECT_EQ(protos[1].w, 1);
  EXPECT_FLOAT_EQ(protos[1].vector[0], 0.5f);
  EXPECT_FLOAT_EQ(protos[1].vector[1], 0.7f);
  EXPECT_FLOAT_EQ(protos[1].vector[2], 0.9f);
}

TEST(PrototypeTest, PaperExample4TopThreeDropsNothingNew) {
  // With Z=3, C2's argmax is also (0,1), duplicating C3's position, so the
  // duplicate is dropped and only 2 unique prototypes remain (§3.1: "we
  // drop the duplicate v's and only keep the unique prototypes").
  std::vector<Prototype> protos = ExtractTopZPrototypes(Example4FilterMap(), 3);
  EXPECT_EQ(protos.size(), 2u);
}

TEST(PrototypeTest, ZLargerThanChannelsClamps) {
  std::vector<Prototype> protos =
      ExtractTopZPrototypes(Example4FilterMap(), 100);
  EXPECT_LE(protos.size(), 3u);
}

TEST(PrototypeTest, AllPositionVectorsLayout) {
  Tensor fmap = Example4FilterMap();
  std::vector<std::vector<float>> positions = AllPositionVectors(fmap);
  ASSERT_EQ(positions.size(), 4u);  // H*W = 4
  // Position (0,1) -> row 1 spans channels: {0.5, 0.7, 0.9}.
  EXPECT_FLOAT_EQ(positions[1][0], 0.5f);
  EXPECT_FLOAT_EQ(positions[1][1], 0.7f);
  EXPECT_FLOAT_EQ(positions[1][2], 0.9f);
}

TEST(PrototypeTest, SingleChannelSinglePrototype) {
  Tensor fmap({1, 3, 3}, 0.0f);
  fmap[4] = 2.0f;  // center
  std::vector<Prototype> protos = ExtractTopZPrototypes(fmap, 5);
  ASSERT_EQ(protos.size(), 1u);
  EXPECT_EQ(protos[0].h, 1);
  EXPECT_EQ(protos[0].w, 1);
}

data::Image EdgeImage() {
  data::Image img(3, 32, 32, 0.0f);
  // Sharp vertical edge down the middle.
  data::DrawFilledRect(&img, 16, 0, 31, 31, {1.0f, 1.0f, 1.0f});
  return img;
}

data::Image FlatImage() {
  return data::Image(3, 32, 32, 0.5f);
}

TEST(HogTest, DescriptorDimensionsMatchConfig) {
  HogConfig config;  // 8px cells, 9 bins, 2x2 blocks on 32x32 -> 3*3 blocks
  Result<std::vector<float>> hog = ComputeHog(EdgeImage(), config);
  ASSERT_TRUE(hog.ok());
  EXPECT_EQ(hog->size(), 3u * 3u * 2u * 2u * 9u);
}

TEST(HogTest, FlatImageHasZeroDescriptor) {
  Result<std::vector<float>> hog = ComputeHog(FlatImage());
  ASSERT_TRUE(hog.ok());
  for (float v : *hog) EXPECT_NEAR(v, 0.0f, 1e-4f);
}

TEST(HogTest, VerticalEdgeActivatesHorizontalGradientBin) {
  Result<std::vector<float>> hog = ComputeHog(EdgeImage());
  ASSERT_TRUE(hog.ok());
  // A vertical edge has horizontal gradient (angle 0) -> bin 0 of some cell
  // dominates the descriptor mass.
  float bin0_mass = 0.0f, other_mass = 0.0f;
  for (size_t i = 0; i < hog->size(); ++i) {
    if (i % 9 == 0) {
      bin0_mass += (*hog)[i];
    } else {
      other_mass += (*hog)[i];
    }
  }
  EXPECT_GT(bin0_mass, other_mass);
}

TEST(HogTest, BlockNormalizationBoundsValues) {
  Result<std::vector<float>> hog = ComputeHog(EdgeImage());
  ASSERT_TRUE(hog.ok());
  for (float v : *hog) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f + 1e-4f);
  }
}

TEST(HogTest, TooSmallImageRejected) {
  data::Image tiny(1, 4, 4, 0.0f);
  EXPECT_FALSE(ComputeHog(tiny).ok());
}

TEST(HogTest, MatrixStacksDescriptors) {
  Result<Matrix> m = ComputeHogMatrix({EdgeImage(), FlatImage()});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 2);
  EXPECT_GT(m->cols(), 0);
}

class ExtractorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nn::VggMiniConfig config;
    config.stage_channels = {4, 8, 8, 8, 8};
    config.num_classes = 6;
    Result<nn::VggMini> model = nn::BuildVggMini(config);
    ASSERT_TRUE(model.ok());
    extractor_ = std::make_unique<FeatureExtractor>(std::move(*model));
    for (int i = 0; i < 5; ++i) {
      images_.push_back(i % 2 == 0 ? EdgeImage() : FlatImage());
    }
  }

  std::unique_ptr<FeatureExtractor> extractor_;
  std::vector<data::Image> images_;
};

TEST_F(ExtractorTest, PoolFeatureMapShapes) {
  Result<std::vector<std::vector<Tensor>>> maps =
      extractor_->PoolFeatureMaps(images_, /*batch_size=*/2);
  ASSERT_TRUE(maps.ok());
  ASSERT_EQ(maps->size(), 5u);  // 5 pool layers
  for (int layer = 0; layer < 5; ++layer) {
    ASSERT_EQ((*maps)[static_cast<size_t>(layer)].size(), images_.size());
  }
  EXPECT_EQ((*maps)[0][0].shape(), (std::vector<int64_t>{4, 16, 16}));
  EXPECT_EQ((*maps)[4][0].shape(), (std::vector<int64_t>{8, 1, 1}));
}

TEST_F(ExtractorTest, BatchSizeDoesNotChangeResults) {
  Result<std::vector<std::vector<Tensor>>> a =
      extractor_->PoolFeatureMaps(images_, 1);
  Result<std::vector<std::vector<Tensor>>> b =
      extractor_->PoolFeatureMaps(images_, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t layer = 0; layer < a->size(); ++layer) {
    for (size_t i = 0; i < images_.size(); ++i) {
      const Tensor& ta = (*a)[layer][i];
      const Tensor& tb = (*b)[layer][i];
      ASSERT_EQ(ta.NumElements(), tb.NumElements());
      for (int64_t e = 0; e < ta.NumElements(); ++e) {
        ASSERT_FLOAT_EQ(ta[e], tb[e]);
      }
    }
  }
}

TEST_F(ExtractorTest, LogitsShape) {
  Result<Matrix> logits = extractor_->Logits(images_, 2);
  ASSERT_TRUE(logits.ok());
  EXPECT_EQ(logits->rows(), 5);
  EXPECT_EQ(logits->cols(), 6);
}

TEST_F(ExtractorTest, PenultimateFeaturesShape) {
  Result<Matrix> features = extractor_->PenultimateFeatures(images_, 3);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->rows(), 5);
  EXPECT_EQ(features->cols(), 8);  // 8 channels * 1 * 1
}

TEST_F(ExtractorTest, IdenticalImagesGetIdenticalFeatures) {
  std::vector<data::Image> twins = {EdgeImage(), EdgeImage()};
  Result<Matrix> logits = extractor_->Logits(twins);
  ASSERT_TRUE(logits.ok());
  for (int64_t j = 0; j < logits->cols(); ++j) {
    EXPECT_DOUBLE_EQ((*logits)(0, j), (*logits)(1, j));
  }
}

}  // namespace
}  // namespace goggles::features
