#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "goggles/base_gmm.h"
#include "goggles/ensemble.h"
#include "tensor/gemm.h"
#include "util/parallel.h"
#include "util/rng.h"

/// \file gmm_gemm_test.cc
/// \brief The GEMM-accelerated EM fit cores' determinism contract:
///  (a) DGemm / DGemmWithPackedA match the retained scalar reference
///      (DGemmReference) bit for bit over randomized shapes, including
///      shapes crossing the kGemmKChunk accumulation boundary, and a
///      naive tolerance reference for plain correctness;
///  (b) DiagonalGmm::Fit / BernoulliMixture::Fit produce bit-identical
///      parameters, LL trajectories and posteriors on the GEMM engine vs
///      the scalar-reference engine, and at serial vs parallel execution
///      (ScopedSerialKernels forces 1-thread kernels and serial restarts);
///  (c) DGemm passes the same transpose/alpha/beta/NaN semantics sweep as
///      tensor_gemm_test.cc does for SGemm.

namespace goggles {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<double> RandomVec(size_t size, Rng* rng) {
  std::vector<double> v(size);
  for (auto& x : v) x = rng->Gaussian();
  return v;
}

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform();
  return m;
}

/// Natural triple-loop reference (single ascending-k accumulator) — NOT
/// bit-comparable to the chunked kernels; used with a tolerance to guard
/// against a shared indexing bug in kernel + chunked reference.
void NaiveGemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k,
               double alpha, const double* a, int64_t lda, const double* b,
               int64_t ldb, double beta, double* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const double av = ta ? a[p * lda + i] : a[i * lda + p];
        const double bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += av * bv;
      }
      const double prior = beta == 0.0 ? 0.0 : beta * c[i * ldc + j];
      c[i * ldc + j] = alpha * acc + prior;
    }
  }
}

/// One geometry: DGemm vs DGemmReference must agree bit for bit, and both
/// must agree with the naive reference within tolerance. Strides add
/// `slack` columns beyond the tight leading dimension.
void CheckCase(bool ta, bool tb, int64_t m, int64_t n, int64_t k,
               double alpha, double beta, int64_t slack, Rng* rng) {
  const int64_t lda = (ta ? m : k) + slack;
  const int64_t ldb = (tb ? k : n) + slack;
  const int64_t ldc = n + slack;
  const int64_t a_rows = ta ? k : m;
  const int64_t b_rows = tb ? n : k;

  std::vector<double> a = RandomVec(static_cast<size_t>(a_rows * lda), rng);
  std::vector<double> b = RandomVec(static_cast<size_t>(b_rows * ldb), rng);
  std::vector<double> c = RandomVec(static_cast<size_t>(m * ldc), rng);
  std::vector<double> c_ref = c;
  std::vector<double> c_naive = c;

  DGemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c.data(),
        ldc);
  DGemmReference(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
                 c_ref.data(), ldc);
  NaiveGemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
            c_naive.data(), ldc);

  ASSERT_EQ(std::memcmp(c.data(), c_ref.data(), c.size() * sizeof(double)), 0)
      << "DGemm != DGemmReference at ta=" << ta << " tb=" << tb << " m=" << m
      << " n=" << n << " k=" << k << " alpha=" << alpha << " beta=" << beta;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const double got = c[static_cast<size_t>(i * ldc + j)];
      const double want = c_naive[static_cast<size_t>(i * ldc + j)];
      ASSERT_NEAR(got, want, 1e-10 * (std::abs(want) + k))
          << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
          << " k=" << k << " at (" << i << ", " << j << ")";
    }
  }
}

// Sizes straddling the micro-tile and macro-tile boundaries, plus 257/300
// to cross the kGemmKChunk partial-sum boundary on the depth dimension.
const int64_t kSizes[] = {1, 7, 9, 64, 65};
const int64_t kDepths[] = {1, 8, 63, 256, 257, 300};

TEST(DGemmBitExactTest, MatchesChunkedReferenceAllTransposesAndStrides) {
  Rng rng(42);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (int64_t m : kSizes) {
        for (int64_t n : kSizes) {
          for (int64_t k : kDepths) {
            const int64_t slack = (m + n + k) % 2 == 0 ? 0 : 3;
            CheckCase(ta, tb, m, n, k, 1.0, 0.0, slack, &rng);
          }
        }
      }
    }
  }
}

TEST(DGemmBitExactTest, AlphaBetaGrid) {
  Rng rng(43);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (double alpha : {0.0, 1.0, 0.5}) {
        for (double beta : {0.0, 1.0, 0.5}) {
          for (int64_t size : {int64_t{9}, int64_t{65}}) {
            CheckCase(ta, tb, size, size + 1, size * 5 - 1, alpha, beta,
                      /*slack=*/3, &rng);
          }
        }
      }
    }
  }
}

TEST(DGemmSemanticsTest, NanInBPropagatesThroughZeroInA) {
  const std::vector<double> a = {0.0, 1.0};
  const std::vector<double> b = {kNaN, 2.0};
  std::vector<double> c = {0.0};
  DGemm(false, false, 1, 1, 2, 1.0, a.data(), 2, b.data(), 1, 0.0, c.data(),
        1);
  EXPECT_TRUE(std::isnan(c[0])) << "0 * NaN must propagate, got " << c[0];
}

TEST(DGemmSemanticsTest, AlphaZeroDoesNotReferenceAOrB) {
  const std::vector<double> a = {kNaN, kNaN, kNaN, kNaN};
  const std::vector<double> b = {kNaN, kNaN, kNaN, kNaN};
  std::vector<double> c = {1.0, 2.0, 3.0, 4.0};
  DGemm(false, false, 2, 2, 2, 0.0, a.data(), 2, b.data(), 2, 0.5, c.data(),
        2);
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  EXPECT_DOUBLE_EQ(c[3], 2.0);
}

TEST(DGemmSemanticsTest, BetaZeroOverwritesStaleNaN) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {2.0};
  std::vector<double> c = {kNaN};
  DGemm(false, false, 1, 1, 1, 1.0, a.data(), 1, b.data(), 1, 0.0, c.data(),
        1);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
}

TEST(DGemmDeterminismTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(44);
  const int64_t m = 130, n = 6, k = 300;
  std::vector<double> a = RandomVec(static_cast<size_t>(m * k), &rng);
  std::vector<double> b = RandomVec(static_cast<size_t>(k * n), &rng);
  std::vector<double> c1(static_cast<size_t>(m * n), 0.0);
  DGemmWithThreads(false, false, m, n, k, 1.0, a.data(), k, b.data(), n, 0.0,
                   c1.data(), n, /*num_threads=*/1);
  for (int threads : {2, 3, 8}) {
    std::vector<double> cn(static_cast<size_t>(m * n), 0.0);
    DGemmWithThreads(false, false, m, n, k, 1.0, a.data(), k, b.data(), n,
                     0.0, cn.data(), n, threads);
    ASSERT_EQ(std::memcmp(c1.data(), cn.data(), c1.size() * sizeof(double)),
              0)
        << "results diverge at " << threads << " threads";
  }
}

TEST(DGemmDeterminismTest, PackedOperandMatchesUnpackedBitForBit) {
  Rng rng(45);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (int64_t m : {int64_t{5}, int64_t{70}, int64_t{130}}) {
        for (int64_t k : {int64_t{9}, int64_t{256}, int64_t{300}}) {
          const int64_t n = 3;
          const int64_t lda = ta ? m : k;
          std::vector<double> a =
              RandomVec(static_cast<size_t>((ta ? k : m) * lda), &rng);
          std::vector<double> b =
              RandomVec(static_cast<size_t>((tb ? n : k) * (tb ? k : n)),
                        &rng);
          std::vector<double> c_plain(static_cast<size_t>(m * n), 0.0);
          std::vector<double> c_packed = c_plain;
          DGemm(ta, tb, m, n, k, 1.0, a.data(), lda, b.data(), tb ? k : n,
                0.0, c_plain.data(), n);
          const DGemmPackedA packed =
              DGemmPackOperandA(ta, m, k, a.data(), lda);
          DGemmWithPackedA(packed, tb, n, b.data(), tb ? k : n, 0.0,
                           c_packed.data(), n);
          ASSERT_EQ(std::memcmp(c_plain.data(), c_packed.data(),
                                c_plain.size() * sizeof(double)),
                    0)
              << "ta=" << ta << " tb=" << tb << " m=" << m << " k=" << k;
        }
      }
    }
  }
}

/// Fits two models with identical configs except the engine flag and
/// requires the full fit result to match bit for bit.
void CheckGmmEngines(int64_t n, int64_t d, int components, uint64_t seed) {
  Rng rng(seed);
  Matrix x = RandomMatrix(n, d, &rng);
  GmmConfig gemm_config;
  gemm_config.num_components = components;
  gemm_config.num_restarts = 3;
  gemm_config.max_iters = 15;
  gemm_config.tol = 0.0;  // run every iteration: longer trajectories
  gemm_config.seed = seed;
  GmmConfig ref_config = gemm_config;
  ref_config.use_gemm = false;

  DiagonalGmm gemm_fit(gemm_config), ref_fit(ref_config);
  ASSERT_TRUE(gemm_fit.Fit(x).ok());
  ASSERT_TRUE(ref_fit.Fit(x).ok());

  ASSERT_EQ(gemm_fit.log_likelihood_history(),
            ref_fit.log_likelihood_history())
      << "n=" << n << " d=" << d << " k=" << components;
  EXPECT_EQ(gemm_fit.final_log_likelihood(), ref_fit.final_log_likelihood());
  ASSERT_EQ(std::memcmp(gemm_fit.means().data(), ref_fit.means().data(),
                        static_cast<size_t>(gemm_fit.means().size()) *
                            sizeof(double)),
            0);
  ASSERT_EQ(std::memcmp(gemm_fit.variances().data(),
                        ref_fit.variances().data(),
                        static_cast<size_t>(gemm_fit.variances().size()) *
                            sizeof(double)),
            0);
  ASSERT_EQ(gemm_fit.weights(), ref_fit.weights());

  Result<Matrix> gemm_proba = gemm_fit.PredictProba(x);
  Result<Matrix> ref_proba = ref_fit.PredictProba(x);
  ASSERT_TRUE(gemm_proba.ok());
  ASSERT_TRUE(ref_proba.ok());
  ASSERT_EQ(std::memcmp(gemm_proba->data(), ref_proba->data(),
                        static_cast<size_t>(gemm_proba->size()) *
                            sizeof(double)),
            0);
}

TEST(GmmEngineEquivalenceTest, FitBitIdenticalOverRandomizedShapes) {
  // Shapes straddle the register tiles and (via 2D > 512) the kGemmKChunk
  // accumulation boundary of the augmented design matrix.
  CheckGmmEngines(40, 7, 2, 1);
  CheckGmmEngines(60, 33, 3, 2);
  CheckGmmEngines(25, 300, 2, 3);
  CheckGmmEngines(130, 65, 4, 4);
}

/// The same check for the Bernoulli ensemble; `fractional` exercises the
/// no-one-hot ablation input.
void CheckBernoulliEngines(int64_t n, int64_t l, int components,
                           uint64_t seed, bool fractional) {
  Rng rng(seed);
  Matrix b(n, l);
  for (int64_t i = 0; i < b.size(); ++i) {
    b.data()[i] = fractional ? rng.Uniform() : (rng.Bernoulli(0.5) ? 1.0 : 0.0);
  }
  BernoulliMixtureConfig gemm_config;
  gemm_config.num_components = components;
  gemm_config.num_restarts = 3;
  gemm_config.max_iters = 15;
  gemm_config.tol = 0.0;
  gemm_config.seed = seed;
  BernoulliMixtureConfig ref_config = gemm_config;
  ref_config.use_gemm = false;

  BernoulliMixture gemm_fit(gemm_config), ref_fit(ref_config);
  ASSERT_TRUE(gemm_fit.Fit(b).ok());
  ASSERT_TRUE(ref_fit.Fit(b).ok());

  ASSERT_EQ(gemm_fit.log_likelihood_history(),
            ref_fit.log_likelihood_history())
      << "n=" << n << " l=" << l << " k=" << components;
  ASSERT_EQ(std::memcmp(gemm_fit.bernoulli_params().data(),
                        ref_fit.bernoulli_params().data(),
                        static_cast<size_t>(gemm_fit.bernoulli_params()
                                                .size()) *
                            sizeof(double)),
            0);
  ASSERT_EQ(gemm_fit.weights(), ref_fit.weights());

  Result<Matrix> gemm_proba = gemm_fit.PredictProba(b);
  Result<Matrix> ref_proba = ref_fit.PredictProba(b);
  ASSERT_TRUE(gemm_proba.ok());
  ASSERT_TRUE(ref_proba.ok());
  ASSERT_EQ(std::memcmp(gemm_proba->data(), ref_proba->data(),
                        static_cast<size_t>(gemm_proba->size()) *
                            sizeof(double)),
            0);
}

TEST(BernoulliEngineEquivalenceTest, FitBitIdenticalOverRandomizedShapes) {
  CheckBernoulliEngines(30, 4, 2, 11, /*fractional=*/false);
  CheckBernoulliEngines(150, 100, 2, 12, /*fractional=*/false);
  CheckBernoulliEngines(80, 300, 3, 13, /*fractional=*/false);
  CheckBernoulliEngines(60, 20, 2, 14, /*fractional=*/true);
}

// Serial vs parallel execution: ScopedSerialKernels forces every
// ParallelFor under it (restart parallelism AND the kernels' internal
// row-tile parallelism) onto one thread; an unmarked Fit uses the default
// worker count. The trajectories must match bit for bit.
TEST(EmThreadInvarianceTest, GmmFitBitIdenticalSerialVsParallel) {
  Rng rng(21);
  Matrix x = RandomMatrix(90, 90, &rng);
  GmmConfig config;
  config.num_components = 3;
  config.num_restarts = 4;
  config.max_iters = 12;
  config.tol = 0.0;

  DiagonalGmm parallel_fit(config);
  ASSERT_TRUE(parallel_fit.Fit(x).ok());
  DiagonalGmm serial_fit(config);
  {
    ScopedSerialKernels serial;
    ASSERT_TRUE(serial_fit.Fit(x).ok());
  }
  EXPECT_EQ(parallel_fit.log_likelihood_history(),
            serial_fit.log_likelihood_history());
  ASSERT_EQ(std::memcmp(parallel_fit.means().data(),
                        serial_fit.means().data(),
                        static_cast<size_t>(parallel_fit.means().size()) *
                            sizeof(double)),
            0);
  ASSERT_EQ(std::memcmp(parallel_fit.variances().data(),
                        serial_fit.variances().data(),
                        static_cast<size_t>(parallel_fit.variances().size()) *
                            sizeof(double)),
            0);
  ASSERT_EQ(parallel_fit.weights(), serial_fit.weights());
}

TEST(EmThreadInvarianceTest, BernoulliFitBitIdenticalSerialVsParallel) {
  Rng rng(22);
  Matrix b(120, 40);
  for (int64_t i = 0; i < b.size(); ++i) {
    b.data()[i] = rng.Bernoulli(0.4) ? 1.0 : 0.0;
  }
  BernoulliMixtureConfig config;
  config.num_components = 2;
  config.num_restarts = 4;
  config.max_iters = 12;
  config.tol = 0.0;

  BernoulliMixture parallel_fit(config);
  ASSERT_TRUE(parallel_fit.Fit(b).ok());
  BernoulliMixture serial_fit(config);
  {
    ScopedSerialKernels serial;
    ASSERT_TRUE(serial_fit.Fit(b).ok());
  }
  EXPECT_EQ(parallel_fit.log_likelihood_history(),
            serial_fit.log_likelihood_history());
  ASSERT_EQ(std::memcmp(parallel_fit.bernoulli_params().data(),
                        serial_fit.bernoulli_params().data(),
                        static_cast<size_t>(
                            parallel_fit.bernoulli_params().size()) *
                            sizeof(double)),
            0);
  ASSERT_EQ(parallel_fit.weights(), serial_fit.weights());
}

// Restart-parallel vs restart-serial execution with the kernels' internal
// parallelism still enabled: running Fit from inside a ParallelFor worker
// collapses the restart loop to serial (nested parallelism) while a
// top-level Fit may fan restarts out — results must not depend on which
// happened.
TEST(EmThreadInvarianceTest, GmmFitBitIdenticalInsideWorkerThread) {
  Rng rng(23);
  Matrix x = RandomMatrix(70, 50, &rng);
  GmmConfig config;
  config.num_components = 2;
  config.num_restarts = 4;
  config.max_iters = 10;
  config.tol = 0.0;

  DiagonalGmm top_level(config);
  ASSERT_TRUE(top_level.Fit(x).ok());

  DiagonalGmm nested(config);
  Status nested_status = Status::OK();
  ParallelFor(0, 1, [&](int64_t) { nested_status = nested.Fit(x); });
  ASSERT_TRUE(nested_status.ok());

  EXPECT_EQ(top_level.log_likelihood_history(),
            nested.log_likelihood_history());
  ASSERT_EQ(std::memcmp(top_level.means().data(), nested.means().data(),
                        static_cast<size_t>(top_level.means().size()) *
                            sizeof(double)),
            0);
}

}  // namespace
}  // namespace goggles
